#include "engine/database.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <unordered_set>

#include "common/strings.h"
#include "common/timer.h"
#include "engine/binder.h"
#include "engine/optimizer.h"
#include "engine/parameters.h"
#include "engine/sql_text.h"
#include "exec/operators.h"
#include "lint/linter.h"
#include "lint/plan_verifier.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace bornsql::engine {

namespace {

// Mirrors an operator tree into the obs data model, copying any collected
// stats.
obs::PlanStatsNode CapturePlan(const exec::Operator& op) {
  obs::PlanStatsNode node;
  node.name = op.DebugString();
  node.has_stats = op.stats_enabled();
  node.stats = op.stats();
  for (const exec::Operator* child : op.children()) {
    if (child != nullptr) node.children.push_back(CapturePlan(*child));
  }
  return node;
}

// Folds an instrumented plan into the registry: per-operator-type
// aggregates, rows_scanned from the scan leaves, join_probes from each
// join's probe input. `seen` dedupes CTE subtrees shared by several gates.
void AccumulatePlanMetrics(obs::MetricsRegistry* metrics,
                           const exec::Operator& op,
                           std::unordered_set<const exec::Operator*>* seen) {
  if (!seen->insert(&op).second) return;
  const std::string type = obs::OperatorTypeOf(op.DebugString());
  metrics->RecordOperator(type, op.stats());
  if (type == "SeqScan" || type == "MaterializedScan" || type == "CteScan") {
    metrics->IncrementCounter(obs::kRowsScanned, op.stats().rows_emitted);
  }
  const std::vector<exec::Operator*> children = op.children();
  const bool is_join = type == "HashJoin" || type == "SortMergeJoin" ||
                       type == "NestedLoopJoin" || type == "IndexJoin";
  if (is_join && !children.empty() && children.front() != nullptr) {
    metrics->IncrementCounter(obs::kJoinProbes,
                              children.front()->stats().rows_emitted);
  }
  for (const exec::Operator* child : children) {
    if (child != nullptr) AccumulatePlanMetrics(metrics, *child, seen);
  }
}

// Synthetic stats for DML root nodes (Insert/Update/Delete), which are not
// iterator operators: one "open", rows_affected as the row count, and the
// statement's total wall time.
obs::OperatorStats DmlStats(size_t rows_affected, double elapsed_seconds) {
  obs::OperatorStats stats;
  stats.open_calls = 1;
  stats.rows_emitted = rows_affected;
  stats.wall_nanos = static_cast<uint64_t>(elapsed_seconds * 1e9);
  return stats;
}

std::string InsertNodeName(const sql::InsertStmt& stmt) {
  return StrFormat("Insert(%s%s)", stmt.table.c_str(),
                   stmt.on_conflict != nullptr ? ", on conflict" : "");
}

// Appends one trace span per instrumented operator, using the lifetime
// interval (first/last hook timestamps) each operator's stats collected.
// `seen` dedupes CTE subtrees shared by several gates.
void AppendOperatorSpans(const obs::TraceRecorder& recorder,
                         const exec::Operator& op, obs::StatementTrace* trace,
                         std::unordered_set<const exec::Operator*>* seen) {
  if (!seen->insert(&op).second) return;
  const obs::OperatorStats& stats = op.stats();
  if (stats.first_ns != 0) {
    obs::TraceSpan span;
    span.name = op.DebugString();
    span.category = "operator";
    span.start_ns = recorder.RelativeNs(stats.first_ns);
    span.dur_ns = stats.last_ns > stats.first_ns
                      ? stats.last_ns - stats.first_ns
                      : 0;
    trace->spans.push_back(std::move(span));
  }
  for (const exec::Operator* child : op.children()) {
    if (child != nullptr) AppendOperatorSpans(recorder, *child, trace, seen);
  }
}

}  // namespace

Result<Value> QueryResult::ScalarValue() const {
  if (rows.size() != 1 || rows[0].size() != 1) {
    return Status::InvalidArgument(
        StrFormat("expected a 1x1 result, got %zux%zu", rows.size(),
                  rows.empty() ? 0 : rows[0].size()));
  }
  return rows[0][0];
}

void Database::BeginStatement(StatementContext* ctx) {
  ctx->tracing = trace_enabled_;
  if (ctx->tracing) ctx->trace.start_ns = trace_.NowNs();
}

void Database::AddPhaseSpan(StatementContext* ctx, const char* name,
                            uint64_t start_ns) {
  if (!ctx->tracing) return;
  obs::TraceSpan span;
  span.name = name;
  span.category = "phase";
  span.start_ns = start_ns;
  span.dur_ns = trace_.NowNs() - start_ns;
  ctx->trace.spans.push_back(std::move(span));
}

Result<QueryResult> Database::Execute(std::string_view sql) {
  StatementContext ctx;
  BeginStatement(&ctx);
  const uint64_t lex_start = ctx.tracing ? trace_.NowNs() : 0;
  BORNSQL_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Lex(sql));
  AddPhaseSpan(&ctx, "lex", lex_start);
  ctx.key = NormalizeTokens(tokens, 0, tokens.size());
  const uint64_t parse_start = ctx.tracing ? trace_.NowNs() : 0;
  BORNSQL_ASSIGN_OR_RETURN(sql::Statement stmt,
                           sql::ParseStatementTokens(std::move(tokens)));
  AddPhaseSpan(&ctx, "parse", parse_start);
  return ExecuteTracked(stmt, &ctx);
}

Status Database::ExecuteScript(std::string_view sql) {
  // Lex once for per-statement normalized keys; the parser re-lexes
  // internally (lexing is cheap next to execution).
  std::vector<std::string> keys;
  if (auto tokens = sql::Lex(sql); tokens.ok()) {
    keys = NormalizeScriptTokens(*tokens);
  }
  BORNSQL_ASSIGN_OR_RETURN(std::vector<sql::Statement> stmts,
                           sql::ParseScript(sql));
  for (size_t i = 0; i < stmts.size(); ++i) {
    StatementContext ctx;
    BeginStatement(&ctx);
    ctx.key = i < keys.size() && keys.size() == stmts.size()
                  ? keys[i]
                  : FallbackStatementKey(stmts[i]);
    auto result = ExecuteTracked(stmts[i], &ctx);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<QueryResult> Database::ExecuteStatement(const sql::Statement& stmt) {
  StatementContext ctx;
  BeginStatement(&ctx);
  ctx.key = FallbackStatementKey(stmt);
  return ExecuteTracked(stmt, &ctx);
}

Result<QueryResult> Database::ExecuteParsed(const sql::Statement& stmt,
                                            std::string key) {
  StatementContext ctx;
  BeginStatement(&ctx);
  ctx.key = std::move(key);
  return ExecuteTracked(stmt, &ctx);
}

Result<plan::LogicalPlan> Database::BuildOptimizedPlan(
    const sql::SelectStmt& stmt) {
  Planner planner = MakePlanner();
  BORNSQL_ASSIGN_OR_RETURN(plan::LogicalPlan plan,
                           planner.BuildLogical(stmt));
  BORNSQL_RETURN_IF_ERROR(planner.OptimizeLogical(&plan));
  return plan;
}

Result<QueryResult> Database::ExecuteCachedPlan(
    const plan::LogicalPlan& cached, const std::vector<Value>& args,
    std::string key) {
  StatementContext ctx;
  BeginStatement(&ctx);
  ctx.key = std::move(key);
  WallTimer timer;

  obs::StatementTrace* saved_trace = active_trace_;
  active_trace_ = ctx.tracing ? &ctx.trace : nullptr;
  Result<QueryResult> result = RunCachedSelect(cached, args, &ctx);
  active_trace_ = saved_trace;

  const double elapsed_seconds = timer.ElapsedSeconds();
  metrics_->IncrementCounter(obs::kQueriesExecuted);
  if (!result.ok()) metrics_->IncrementCounter(obs::kQueriesFailed);
  metrics_->RecordLatency(obs::kStatementLatencyUs, elapsed_seconds);
  const uint64_t rows = result.ok() ? result->rows.size() : 0;
  if (stmt_stats_->Record(ctx.key, elapsed_seconds * 1e3, rows,
                          !result.ok())) {
    metrics_->IncrementCounter(obs::kStatementStatsEvictions);
  }

  if (ctx.tracing) {
    ctx.trace.statement = ctx.key;
    ctx.trace.dur_ns = trace_.NowNs() - ctx.trace.start_ns;
    ctx.trace.rows = rows;
    ctx.trace.error = !result.ok();
    trace_.Record(std::move(ctx.trace));
  }
  return result;
}

Result<QueryResult> Database::RunCachedSelect(const plan::LogicalPlan& cached,
                                              const std::vector<Value>& args,
                                              StatementContext* ctx) {
  const uint64_t subst_start = ctx->tracing ? trace_.NowNs() : 0;
  // Declared before the operator tree so operators release their memory
  // reservations before the tracker dies.
  obs::MemoryTracker query_mem("query", "query", mem_parent_);
  if (query_mem_limit_ > 0) query_mem.set_limit(query_mem_limit_);
  plan::LogicalPlan plan = plan::ClonePlanDeep(cached);
  BORNSQL_RETURN_IF_ERROR(SubstituteParamsInPlan(&plan, args));
  AddPhaseSpan(ctx, "substitute", subst_start);

  const uint64_t lower_start = ctx->tracing ? trace_.NowNs() : 0;
  Planner planner = MakePlanner();
  BORNSQL_ASSIGN_OR_RETURN(exec::OperatorPtr op, planner.LowerLogical(plan));
  if (config_.verify_plans) {
    BORNSQL_RETURN_IF_ERROR(lint::VerifyPlanStatus(*op));
  }
  AddPhaseSpan(ctx, "lower", lower_start);

  op->SetMemoryTracker(&query_mem);
  op->SetVectorSize(config_.vector_size);
  const bool instrument = config_.collect_exec_stats;
  if (instrument) op->EnableStats(true);
  const uint64_t exec_start = ctx->tracing ? trace_.NowNs() : 0;
  Result<exec::MaterializedResult> drained = exec::Drain(*op);
  AddPhaseSpan(ctx, "execute", exec_start);
  if (drained.ok()) {
    // The materialized result buffer is query memory too: charging it
    // gives streaming point lookups a truthful nonzero peak and puts the
    // rows a statement returns under the same limits as its
    // intermediate state. Released by query_mem's destructor.
    uint64_t result_bytes = 0;
    for (const Row& row : drained->rows) {
      result_bytes += obs::ApproxRowBytes(row);
    }
    Status charged = query_mem.TryReserve(result_bytes, "result buffer");
    if (!charged.ok()) drained = std::move(charged);
  }
  last_query_peak_bytes_ = query_mem.peak();
  if (!drained.ok()) return drained.status();
  exec::MaterializedResult result = std::move(*drained);
  if (instrument) {
    std::unordered_set<const exec::Operator*> seen;
    AccumulatePlanMetrics(metrics_, *op, &seen);
    if (ctx->tracing) {
      std::unordered_set<const exec::Operator*> span_seen;
      AppendOperatorSpans(trace_, *op, &ctx->trace, &span_seen);
    }
  }
  QueryResult out;
  out.column_names = result.schema.ColumnNames();
  out.rows = std::move(result.rows);
  return out;
}

Result<ProfiledQuery> Database::ExecuteProfiled(std::string_view sql) {
  StatementContext ctx;
  BeginStatement(&ctx);
  const uint64_t lex_start = ctx.tracing ? trace_.NowNs() : 0;
  BORNSQL_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Lex(sql));
  AddPhaseSpan(&ctx, "lex", lex_start);
  ctx.key = NormalizeTokens(tokens, 0, tokens.size());
  const uint64_t parse_start = ctx.tracing ? trace_.NowNs() : 0;
  BORNSQL_ASSIGN_OR_RETURN(sql::Statement stmt,
                           sql::ParseStatementTokens(std::move(tokens)));
  AddPhaseSpan(&ctx, "parse", parse_start);
  if (stmt.kind == sql::StatementKind::kExplain) {
    return Status::InvalidArgument(
        "ExecuteProfiled expects a plain statement, not EXPLAIN");
  }
  ProfiledQuery out;
  ctx.profile_plan = &out.plan;
  BORNSQL_ASSIGN_OR_RETURN(out.result, ExecuteTracked(stmt, &ctx));
  return out;
}

Result<QueryResult> Database::ExecuteTracked(const sql::Statement& stmt,
                                             StatementContext* ctx) {
  WallTimer timer;
  // While the slow-query log is armed, eligible statements run instrumented
  // (the auto_explain.log_analyze approach) so a logged entry carries its
  // stats-annotated plan. EXPLAIN and SET never profile.
  const bool slow_armed = slow_query_ms_ >= 0 &&
                          stmt.kind != sql::StatementKind::kExplain &&
                          stmt.kind != sql::StatementKind::kSet;
  const bool want_profile = ctx->profile_plan != nullptr || slow_armed;

  obs::StatementTrace* saved_trace = active_trace_;
  active_trace_ = ctx->tracing ? &ctx->trace : nullptr;
  const uint64_t dispatch_start = ctx->tracing ? trace_.NowNs() : 0;
  const size_t spans_before = ctx->trace.spans.size();

  obs::PlanStatsNode plan;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (!want_profile) return DispatchStatement(stmt);
    Result<ProfiledQuery> profiled = ProfileStatement(stmt);
    if (!profiled.ok()) return profiled.status();
    plan = std::move(profiled->plan);
    return std::move(profiled->result);
  }();
  active_trace_ = saved_trace;

  const double elapsed_seconds = timer.ElapsedSeconds();
  const double elapsed_ms = elapsed_seconds * 1e3;
  metrics_->IncrementCounter(obs::kQueriesExecuted);
  if (!result.ok()) metrics_->IncrementCounter(obs::kQueriesFailed);
  metrics_->RecordLatency(obs::kStatementLatencyUs, elapsed_seconds);

  const uint64_t rows =
      result.ok() ? std::max<uint64_t>(result->rows.size(),
                                       result->rows_affected)
                  : 0;
  if (stmt_stats_->Record(ctx->key, elapsed_ms, rows, !result.ok())) {
    metrics_->IncrementCounter(obs::kStatementStatsEvictions);
  }

  if (slow_armed && result.ok() && elapsed_ms >= slow_query_ms_) {
    obs::SlowQueryEntry entry;
    entry.statement = ctx->key;
    entry.elapsed_ms = elapsed_ms;
    entry.threshold_ms = slow_query_ms_;
    entry.rows = rows;
    entry.plan =
        Join(obs::RenderPlanLines(plan, /*with_stats=*/true), "\n");
    slow_log_.Record(std::move(entry));
  }
  if (ctx->profile_plan != nullptr && result.ok()) {
    *ctx->profile_plan = std::move(plan);
  }

  if (ctx->tracing) {
    if (ctx->trace.spans.size() == spans_before) {
      // No fine-grained spans were recorded (pure-DML path without an
      // embedded SELECT): cover dispatch with one coarse execute span.
      obs::TraceSpan span;
      span.name = "execute";
      span.category = "phase";
      span.start_ns = dispatch_start;
      span.dur_ns = trace_.NowNs() - dispatch_start;
      ctx->trace.spans.push_back(std::move(span));
    }
    ctx->trace.statement = ctx->key;
    ctx->trace.dur_ns = trace_.NowNs() - ctx->trace.start_ns;
    ctx->trace.rows = rows;
    ctx->trace.error = !result.ok();
    trace_.Record(std::move(ctx->trace));
  }
  return result;
}

std::string Database::TraceJson() const {
  return obs::ChromeTraceJson(trace_.Snapshot());
}

Status Database::ExportTrace(const std::string& path) const {
  const std::string json = TraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

Result<QueryResult> Database::DispatchStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return RunSelect(*stmt.select);
    case sql::StatementKind::kExplain:
      return RunExplain(stmt);
    case sql::StatementKind::kCreateTable:
      return RunCreateTable(*stmt.create_table);
    case sql::StatementKind::kDropTable:
      return RunDropTable(*stmt.drop_table);
    case sql::StatementKind::kCreateIndex:
      return RunCreateIndex(*stmt.create_index);
    case sql::StatementKind::kInsert:
      return RunInsert(*stmt.insert);
    case sql::StatementKind::kUpdate:
      return RunUpdate(*stmt.update);
    case sql::StatementKind::kDelete:
      return RunDelete(*stmt.del);
    case sql::StatementKind::kSet:
      return RunSet(*stmt.set);
    case sql::StatementKind::kPrepare:
    case sql::StatementKind::kExecute:
    case sql::StatementKind::kDeallocate:
      // Prepared-statement state is per session, not per database.
      return Status::InvalidArgument(
          "PREPARE/EXECUTE/DEALLOCATE require a serving session "
          "(serve::Session)");
  }
  return Status::Internal("bad statement kind");
}

bool Database::ComposedViews::IsSystemView(const std::string& name) const {
  return (db_->extra_views_ != nullptr &&
          db_->extra_views_->IsSystemView(name)) ||
         db_->system_views_.IsSystemView(name);
}

exec::OperatorPtr Database::ComposedViews::MakeViewScan(
    const std::string& name, const std::string& qualifier) const {
  if (db_->extra_views_ != nullptr && db_->extra_views_->IsSystemView(name)) {
    return db_->extra_views_->MakeViewScan(name, qualifier);
  }
  return db_->system_views_.MakeViewScan(name, qualifier);
}

Planner Database::MakePlanner() {
  return Planner(catalog_, &config_, &composed_views_, &opt_stats_, &trace_,
                 active_trace_);
}

std::string Database::IndexJoinNote() const {
  if (!config_.use_index_joins ||
      config_.join_strategy == JoinStrategy::kHash) {
    return "";
  }
  return StrFormat(
      "note: use_index_joins is ignored under the %s join strategy "
      "(index joins require join_strategy = hash)",
      config_.join_strategy == JoinStrategy::kSortMerge ? "sort-merge"
                                                        : "nested-loop");
}

std::vector<std::string> KnownSettingNames() {
  return {"born.collect_exec_stats", "born.memory_limit", "born.plan_cache",
          "born.plan_cache_capacity", "born.session_memory_limit",
          "born.slow_query_ms", "born.trace", "born.trace_capacity",
          "born.vector_size", "born.verify_plans", "born.verify_rewrites"};
}

Result<QueryResult> Database::RunSet(const sql::SetStmt& stmt) {
  BORNSQL_ASSIGN_OR_RETURN(Value value, EvalConstExpr(*stmt.value));
  constexpr std::string_view kOptPrefix = "born.opt.";
  if (stmt.name.size() > kOptPrefix.size() &&
      std::string_view(stmt.name).substr(0, kOptPrefix.size()) == kOptPrefix) {
    const std::string rule = stmt.name.substr(kOptPrefix.size());
    bool* flag = OptimizerRuleFlag(&config_.rules, rule);
    if (flag == nullptr) {
      if (rule == "cte_inline") {
        return Status::InvalidArgument(
            "optimizer rule 'cte_inline' has no born.opt flag: it is driven "
            "by the CTE mode (EngineConfig::materialize_ctes)");
      }
      std::vector<std::string> valid;
      for (const std::string& name : OptimizerRuleNames()) {
        if (OptimizerRuleFlag(&config_.rules, name) != nullptr) {
          valid.push_back(name);
        }
      }
      return Status::InvalidArgument("unknown optimizer rule '" + rule +
                                     "'; valid rules: " + Join(valid, ", "));
    }
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    *flag = v.AsInt() != 0;
    return QueryResult{};
  }
  if (stmt.name == "born.slow_query_ms") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kDouble));
    slow_query_ms_ = v.AsDouble();
  } else if (stmt.name == "born.trace") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    trace_enabled_ = v.AsInt() != 0;
  } else if (stmt.name == "born.trace_capacity") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    if (v.AsInt() < 1) {
      return Status::InvalidArgument("born.trace_capacity must be >= 1");
    }
    trace_.set_capacity(static_cast<size_t>(v.AsInt()));
  } else if (stmt.name == "born.collect_exec_stats") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    config_.collect_exec_stats = v.AsInt() != 0;
  } else if (stmt.name == "born.vector_size") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    if (v.AsInt() < 1) {
      return Status::InvalidArgument(
          "born.vector_size must be >= 1 (1 = tuple-at-a-time execution)");
    }
    config_.vector_size =
        std::min(static_cast<size_t>(v.AsInt()),
                 exec::Operator::kMaxVectorSize);
  } else if (stmt.name == "born.verify_plans") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    config_.verify_plans = v.AsInt() != 0;
  } else if (stmt.name == "born.verify_rewrites") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    config_.verify_rewrites = v.AsInt() != 0;
  } else if (stmt.name == "born.memory_limit") {
    BORNSQL_ASSIGN_OR_RETURN(Value v, value.CoerceTo(ValueType::kInt));
    if (v.AsInt() < 0) {
      return Status::InvalidArgument(
          "born.memory_limit must be >= 0 bytes (0 = unlimited)");
    }
    query_mem_limit_ = static_cast<uint64_t>(v.AsInt());
  } else if (stmt.name == "born.plan_cache" ||
             stmt.name == "born.plan_cache_capacity" ||
             stmt.name == "born.session_memory_limit") {
    // Recognized so the diagnostic is accurate: these settings exist, but
    // they configure the serving layer (cache / session tracker), which
    // intercepts SET before it reaches a bare database.
    return Status::InvalidArgument("setting '" + stmt.name +
                                   "' requires a serving session "
                                   "(serve::Session)");
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name + "'; valid settings: " +
        Join(KnownSettingNames(), ", ") +
        ", and optimizer rule flags born.opt.<rule>");
  }
  return QueryResult{};
}

Result<QueryResult> Database::RunSelect(const sql::SelectStmt& stmt,
                                        obs::PlanStatsNode* profile) {
  BORNSQL_ASSIGN_OR_RETURN(exec::MaterializedChunks data,
                           ExecSelectToChunks(stmt, profile));
  QueryResult out;
  out.column_names = data.schema.ColumnNames();
  out.rows.reserve(data.row_count);
  const size_t width = data.schema.size();
  for (exec::DataChunk& chunk : data.chunks) {
    for (size_t i = 0; i < chunk.size(); ++i) {
      Row row;
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        row.push_back(std::move(chunk.column(c)[i]));
      }
      out.rows.push_back(std::move(row));
    }
    chunk.Clear();  // free each chunk's buffers as its rows move out
  }
  return out;
}

Result<exec::MaterializedChunks> Database::ExecSelectToChunks(
    const sql::SelectStmt& stmt, obs::PlanStatsNode* profile) {
  obs::StatementTrace* trace = active_trace_;
  // The query's memory budget. Declared before the plan so the operators'
  // destructors (which release their reservations) run before it dies.
  obs::MemoryTracker query_mem("query", "query", mem_parent_);
  if (query_mem_limit_ > 0) query_mem.set_limit(query_mem_limit_);
  // Binding interleaves with planning in this engine (the planner calls the
  // binder per expression), so the trace gets one merged bind+plan span.
  const uint64_t plan_start = trace != nullptr ? trace_.NowNs() : 0;
  Planner planner = MakePlanner();
  BORNSQL_ASSIGN_OR_RETURN(exec::OperatorPtr plan, planner.PlanSelect(stmt));
  if (config_.verify_plans) {
    BORNSQL_RETURN_IF_ERROR(lint::VerifyPlanStatus(*plan));
  }
  if (trace != nullptr) {
    obs::TraceSpan span;
    span.name = "bind+plan";
    span.category = "phase";
    span.start_ns = plan_start;
    span.dur_ns = trace_.NowNs() - plan_start;
    trace->spans.push_back(std::move(span));
  }
  plan->SetMemoryTracker(&query_mem);
  plan->SetVectorSize(config_.vector_size);
  const bool instrument = profile != nullptr || config_.collect_exec_stats;
  if (instrument) plan->EnableStats(true);
  const uint64_t exec_start = trace != nullptr ? trace_.NowNs() : 0;
  Result<exec::MaterializedChunks> drained = exec::DrainChunks(*plan);
  if (trace != nullptr) {
    obs::TraceSpan span;
    span.name = "execute";
    span.category = "phase";
    span.start_ns = exec_start;
    span.dur_ns = trace_.NowNs() - exec_start;
    trace->spans.push_back(std::move(span));
  }
  if (drained.ok()) {
    // The materialized result buffer is query memory too: charging it
    // gives streaming point lookups a truthful nonzero peak and puts the
    // rows a statement returns under the same limits as its
    // intermediate state. Released by query_mem's destructor. The charge
    // is per row and arithmetically identical to ApproxRowBytes over the
    // materialized rows these chunks stand in for.
    uint64_t result_bytes = 0;
    for (const exec::DataChunk& chunk : drained->chunks) {
      result_bytes += chunk.ApproxBytes() + chunk.size() * sizeof(Row);
    }
    Status charged = query_mem.TryReserve(result_bytes, "result buffer");
    if (!charged.ok()) drained = std::move(charged);
  }
  // Recorded on failure too: an over-limit query's peak is exactly what
  // the caller wants to see.
  last_query_peak_bytes_ = query_mem.peak();
  if (!drained.ok()) return drained.status();
  exec::MaterializedChunks result = std::move(*drained);
  if (instrument) {
    std::unordered_set<const exec::Operator*> seen;
    AccumulatePlanMetrics(metrics_, *plan, &seen);
    if (profile != nullptr) *profile = CapturePlan(*plan);
    if (trace != nullptr) {
      std::unordered_set<const exec::Operator*> span_seen;
      AppendOperatorSpans(trace_, *plan, trace, &span_seen);
    }
  }
  return result;
}

Result<obs::PlanStatsNode> Database::DescribePlan(const sql::Statement& stmt) {
  Planner planner = MakePlanner();
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      BORNSQL_ASSIGN_OR_RETURN(exec::OperatorPtr plan,
                               planner.PlanSelect(*stmt.select));
      return CapturePlan(*plan);
    }
    case sql::StatementKind::kInsert: {
      const sql::InsertStmt& ins = *stmt.insert;
      BORNSQL_RETURN_IF_ERROR(catalog_->GetTable(ins.table).status());
      obs::PlanStatsNode root;
      root.name = InsertNodeName(ins);
      if (ins.select != nullptr) {
        BORNSQL_ASSIGN_OR_RETURN(exec::OperatorPtr plan,
                                 planner.PlanSelect(*ins.select));
        root.children.push_back(CapturePlan(*plan));
      } else {
        obs::PlanStatsNode values;
        values.name = StrFormat("Values(%zu rows)", ins.values.size());
        root.children.push_back(std::move(values));
      }
      return root;
    }
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      const bool is_update = stmt.kind == sql::StatementKind::kUpdate;
      const std::string& table_name =
          is_update ? stmt.update->table : stmt.del->table;
      const sql::Expr* where =
          is_update ? stmt.update->where.get() : stmt.del->where.get();
      BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                               catalog_->GetTable(table_name));
      obs::PlanStatsNode root;
      root.name = is_update
                      ? StrFormat("Update(%s, %zu set clauses)",
                                  table_name.c_str(),
                                  stmt.update->set_clauses.size())
                      : StrFormat("Delete(%s)", table_name.c_str());
      obs::PlanStatsNode scan;
      scan.name = StrFormat("SeqScan(%s, %zu rows)", table_name.c_str(),
                            table->row_count());
      if (where != nullptr) {
        obs::PlanStatsNode filter;
        filter.name = "Filter";
        filter.children.push_back(std::move(scan));
        root.children.push_back(std::move(filter));
      } else {
        root.children.push_back(std::move(scan));
      }
      return root;
    }
    case sql::StatementKind::kCreateTable: {
      const sql::CreateTableStmt& ct = *stmt.create_table;
      obs::PlanStatsNode root;
      if (ct.as_select != nullptr) {
        root.name = StrFormat("CreateTableAs(%s)", ct.table.c_str());
        BORNSQL_ASSIGN_OR_RETURN(exec::OperatorPtr plan,
                                 planner.PlanSelect(*ct.as_select));
        root.children.push_back(CapturePlan(*plan));
      } else {
        root.name = StrFormat("CreateTable(%s, %zu columns)",
                              ct.table.c_str(), ct.columns.size());
      }
      return root;
    }
    case sql::StatementKind::kDropTable: {
      obs::PlanStatsNode root;
      root.name = StrFormat("DropTable(%s)", stmt.drop_table->table.c_str());
      return root;
    }
    case sql::StatementKind::kCreateIndex: {
      const sql::CreateIndexStmt& ci = *stmt.create_index;
      BORNSQL_RETURN_IF_ERROR(catalog_->GetTable(ci.table).status());
      obs::PlanStatsNode root;
      root.name = StrFormat("Create%sIndex(%s ON %s)",
                            ci.unique ? "Unique" : "", ci.name.c_str(),
                            ci.table.c_str());
      return root;
    }
    case sql::StatementKind::kSet: {
      obs::PlanStatsNode root;
      root.name = StrFormat("Set(%s)", stmt.set->name.c_str());
      return root;
    }
    case sql::StatementKind::kExplain:
      break;  // parser rejects nested EXPLAIN
    case sql::StatementKind::kPrepare:
    case sql::StatementKind::kExecute:
    case sql::StatementKind::kDeallocate:
      return Status::InvalidArgument(
          "EXPLAIN of PREPARE/EXECUTE/DEALLOCATE requires a serving "
          "session (serve::Session)");
  }
  return Status::Internal("bad statement kind in EXPLAIN");
}

Result<ProfiledQuery> Database::ProfileStatement(const sql::Statement& stmt) {
  ProfiledQuery out;
  WallTimer timer;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      BORNSQL_ASSIGN_OR_RETURN(out.result,
                               RunSelect(*stmt.select, &out.plan));
      return out;
    }
    case sql::StatementKind::kInsert: {
      obs::PlanStatsNode select_profile;
      BORNSQL_ASSIGN_OR_RETURN(out.result,
                               RunInsert(*stmt.insert, &select_profile));
      out.plan.name = InsertNodeName(*stmt.insert);
      out.plan.has_stats = true;
      out.plan.stats =
          DmlStats(out.result.rows_affected, timer.ElapsedSeconds());
      if (!select_profile.name.empty()) {
        out.plan.children.push_back(std::move(select_profile));
      } else {
        obs::PlanStatsNode values;
        values.name =
            StrFormat("Values(%zu rows)", stmt.insert->values.size());
        out.plan.children.push_back(std::move(values));
      }
      return out;
    }
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      // The update/delete paths scan the table directly rather than through
      // operators; describe the scan synthetically with the row count it
      // examined (the table size before mutation).
      BORNSQL_ASSIGN_OR_RETURN(out.plan, DescribePlan(stmt));
      obs::PlanStatsNode* scan = &out.plan.children.front();
      while (!scan->children.empty()) scan = &scan->children.front();
      uint64_t examined = 0;
      const std::string& table_name = stmt.kind == sql::StatementKind::kUpdate
                                          ? stmt.update->table
                                          : stmt.del->table;
      if (auto table = catalog_->GetTable(table_name); table.ok()) {
        examined = (*table)->row_count();
      }
      BORNSQL_ASSIGN_OR_RETURN(out.result,
                               stmt.kind == sql::StatementKind::kUpdate
                                   ? RunUpdate(*stmt.update)
                                   : RunDelete(*stmt.del));
      out.plan.has_stats = true;
      out.plan.stats =
          DmlStats(out.result.rows_affected, timer.ElapsedSeconds());
      scan->has_stats = true;
      scan->stats.open_calls = 1;
      scan->stats.rows_emitted = examined;
      scan->stats.next_calls = examined;
      return out;
    }
    case sql::StatementKind::kCreateTable: {
      obs::PlanStatsNode select_profile;
      BORNSQL_ASSIGN_OR_RETURN(
          out.result, RunCreateTable(*stmt.create_table, &select_profile));
      const sql::CreateTableStmt& ct = *stmt.create_table;
      out.plan.name = ct.as_select != nullptr
                          ? StrFormat("CreateTableAs(%s)", ct.table.c_str())
                          : StrFormat("CreateTable(%s, %zu columns)",
                                      ct.table.c_str(), ct.columns.size());
      out.plan.has_stats = true;
      out.plan.stats =
          DmlStats(out.result.rows_affected, timer.ElapsedSeconds());
      if (!select_profile.name.empty()) {
        out.plan.children.push_back(std::move(select_profile));
      }
      return out;
    }
    case sql::StatementKind::kDropTable:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kSet: {
      BORNSQL_ASSIGN_OR_RETURN(out.plan, DescribePlan(stmt));
      BORNSQL_ASSIGN_OR_RETURN(out.result, DispatchStatement(stmt));
      out.plan.has_stats = true;
      out.plan.stats =
          DmlStats(out.result.rows_affected, timer.ElapsedSeconds());
      return out;
    }
    case sql::StatementKind::kExplain:
      break;
    case sql::StatementKind::kPrepare:
    case sql::StatementKind::kExecute:
    case sql::StatementKind::kDeallocate:
      return Status::InvalidArgument(
          "PREPARE/EXECUTE/DEALLOCATE require a serving session "
          "(serve::Session)");
  }
  return Status::Internal("bad statement kind in EXPLAIN ANALYZE");
}

Result<QueryResult> Database::RunExplain(const sql::Statement& stmt) {
  assert(stmt.explained != nullptr);
  if (stmt.explain_verify) return RunExplainVerify(*stmt.explained);
  if (stmt.explain_lint) return RunExplainLint(*stmt.explained);
  if (stmt.explain_logical) return RunExplainLogical(*stmt.explained);
  obs::PlanStatsNode plan;
  if (stmt.explain_analyze) {
    BORNSQL_ASSIGN_OR_RETURN(ProfiledQuery profiled,
                             ProfileStatement(*stmt.explained));
    plan = std::move(profiled.plan);
  } else {
    BORNSQL_ASSIGN_OR_RETURN(plan, DescribePlan(*stmt.explained));
  }
  QueryResult out;
  out.column_names = {"plan"};
  for (std::string& line :
       obs::RenderPlanLines(plan, /*with_stats=*/stmt.explain_analyze)) {
    out.rows.push_back({Value::Text(std::move(line))});
  }
  if (std::string note = IndexJoinNote(); !note.empty()) {
    out.rows.push_back({Value::Text(std::move(note))});
  }
  return out;
}

Result<QueryResult> Database::RunExplainLogical(const sql::Statement& stmt) {
  // Like EXPLAIN VERIFY, only statements with an embedded SELECT have a
  // logical plan.
  const sql::SelectStmt* select = nullptr;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      select = stmt.select.get();
      break;
    case sql::StatementKind::kInsert:
      select = stmt.insert->select.get();
      break;
    case sql::StatementKind::kCreateTable:
      select = stmt.create_table->as_select.get();
      break;
    default:
      break;
  }
  QueryResult out;
  out.column_names = {"plan"};
  if (select == nullptr) {
    out.rows.push_back(
        {Value::Text("statement has no logical plan (no embedded SELECT)")});
    return out;
  }
  Planner planner = MakePlanner();
  // Two independent builds: the "before" tree stays naive (CTE bodies
  // included), the "after" tree runs the full rule pipeline.
  BORNSQL_ASSIGN_OR_RETURN(
      plan::LogicalPlan before,
      planner.BuildLogical(*select, /*optimize_ctes=*/false));
  BORNSQL_ASSIGN_OR_RETURN(plan::LogicalPlan after,
                           planner.BuildLogical(*select));
  BORNSQL_RETURN_IF_ERROR(planner.OptimizeLogical(&after));
  out.rows.push_back({Value::Text("logical plan (before rules):")});
  for (std::string& line : plan::RenderLogicalLines(before)) {
    out.rows.push_back({Value::Text("  " + std::move(line))});
  }
  out.rows.push_back({Value::Text("logical plan (after rules):")});
  for (std::string& line : plan::RenderLogicalLines(after)) {
    out.rows.push_back({Value::Text("  " + std::move(line))});
  }
  if (std::string note = IndexJoinNote(); !note.empty()) {
    out.rows.push_back({Value::Text(std::move(note))});
  }
  return out;
}

Result<QueryResult> Database::RunExplainVerify(const sql::Statement& stmt) {
  // Only statements with an embedded SELECT have an operator tree; the
  // remaining kinds (INSERT VALUES, UPDATE, DELETE, DDL) execute through
  // dedicated non-operator paths with nothing for the verifier to walk.
  const sql::SelectStmt* select = nullptr;
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      select = stmt.select.get();
      break;
    case sql::StatementKind::kInsert:
      select = stmt.insert->select.get();
      break;
    case sql::StatementKind::kCreateTable:
      select = stmt.create_table->as_select.get();
      break;
    default:
      break;
  }
  QueryResult out;
  out.column_names = {"verify"};
  if (select == nullptr) {
    out.rows.push_back(
        {Value::Text("ok: statement has no operator plan to verify")});
    return out;
  }
  Planner planner = MakePlanner();
  // Plan with translation validation armed and collecting (violations are
  // reported here rather than failing the statement), regardless of the
  // session's verify_rewrites setting: EXPLAIN VERIFY exists to show the
  // evidence.
  RewriteValidationLog vlog;
  planner.set_validation_log(&vlog);
  const bool saved_verify_rewrites = config_.verify_rewrites;
  config_.verify_rewrites = true;
  Result<exec::OperatorPtr> planned = planner.PlanSelect(*select);
  config_.verify_rewrites = saved_verify_rewrites;
  if (!planned.ok()) return planned.status();
  exec::OperatorPtr plan = std::move(*planned);
  size_t checks = 0;
  const std::vector<lint::Diagnostic> diags = lint::VerifyPlan(*plan, &checks);
  if (diags.empty()) {
    out.rows.push_back({Value::Text(
        StrFormat("ok: %zu invariant checks, 0 violations", checks))});
  } else {
    for (const lint::Diagnostic& d : diags) {
      out.rows.push_back({Value::Text(lint::FormatDiagnostic(d))});
    }
  }
  if (vlog.diags.empty()) {
    out.rows.push_back({Value::Text(StrFormat(
        "ok: %zu rule applications translation-validated (%zu checks), "
        "0 violations",
        vlog.applications, vlog.checks))});
  } else {
    for (const lint::Diagnostic& d : vlog.diags) {
      out.rows.push_back({Value::Text(lint::FormatDiagnostic(d))});
    }
  }
  return out;
}

Result<QueryResult> Database::RunExplainLint(const sql::Statement& stmt) {
  const std::vector<lint::Diagnostic> diags =
      lint::LintStatement(stmt, catalog_);
  QueryResult out;
  out.column_names = {"lint"};
  if (diags.empty()) {
    out.rows.push_back({Value::Text("ok: no lint findings")});
  } else {
    for (const lint::Diagnostic& d : diags) {
      out.rows.push_back({Value::Text(lint::FormatDiagnostic(d))});
    }
  }
  return out;
}

Result<QueryResult> Database::RunCreateTable(const sql::CreateTableStmt& stmt,
                                             obs::PlanStatsNode* profile) {
  if (stmt.as_select != nullptr) {
    BORNSQL_ASSIGN_OR_RETURN(QueryResult data,
                             RunSelect(*stmt.as_select, profile));
    Schema schema;
    for (const std::string& name : data.column_names) {
      schema.Add(Column{stmt.table, name, ValueType::kNull});
    }
    if (stmt.if_not_exists && catalog_->Exists(stmt.table)) {
      QueryResult out;
      return out;
    }
    BORNSQL_ASSIGN_OR_RETURN(
        storage::Table * table,
        catalog_->CreateTable(stmt.table, std::move(schema), {}, false));
    for (Row& row : data.rows) table->AppendUnchecked(std::move(row));
    QueryResult out;
    out.rows_affected = table->row_count();
    return out;
  }

  Schema schema;
  std::vector<size_t> key_columns;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    const sql::ColumnDef& def = stmt.columns[i];
    schema.Add(Column{stmt.table, def.name, def.type});
    if (def.primary_key) key_columns.push_back(i);
  }
  for (const std::string& pk : stmt.primary_key) {
    size_t idx = schema.FindUnqualified(pk);
    if (idx == Schema::kNpos) {
      return Status::BindError("PRIMARY KEY column '" + pk +
                               "' is not a column of the table");
    }
    key_columns.push_back(idx);
  }
  BORNSQL_RETURN_IF_ERROR(catalog_
                              ->CreateTable(stmt.table, std::move(schema),
                                            std::move(key_columns),
                                            stmt.if_not_exists)
                              .status());
  return QueryResult{};
}

Result<QueryResult> Database::RunDropTable(const sql::DropTableStmt& stmt) {
  BORNSQL_RETURN_IF_ERROR(catalog_->DropTable(stmt.table, stmt.if_exists));
  return QueryResult{};
}

Result<QueryResult> Database::RunCreateIndex(const sql::CreateIndexStmt& stmt) {
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                           catalog_->GetTable(stmt.table));
  std::vector<size_t> cols;
  for (const std::string& name : stmt.columns) {
    size_t idx = table->schema().FindUnqualified(name);
    if (idx == Schema::kNpos) {
      return Status::BindError("index column '" + name +
                               "' is not a column of '" + stmt.table + "'");
    }
    cols.push_back(idx);
  }
  if (stmt.unique) {
    BORNSQL_RETURN_IF_ERROR(table->SetUniqueKey(std::move(cols)));
  } else {
    table->AddSecondaryIndex(std::move(cols));
  }
  // DDL: a new index can change join strategy choices, so cached plans
  // built against the old version must never be reused.
  catalog_->BumpVersion();
  return QueryResult{};
}

Status Database::CoerceRow(const storage::Table& table, Row* row) const {
  const Schema& schema = table.schema();
  assert(row->size() == schema.size());
  for (size_t i = 0; i < row->size(); ++i) {
    ValueType target = schema.column(i).type;
    if (target == ValueType::kNull) continue;  // dynamic column
    BORNSQL_ASSIGN_OR_RETURN((*row)[i], (*row)[i].CoerceTo(target));
  }
  return Status::OK();
}

Result<QueryResult> Database::RunInsert(const sql::InsertStmt& stmt,
                                        obs::PlanStatsNode* profile) {
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                           catalog_->GetTable(stmt.table));
  const Schema& schema = table->schema();

  // Map provided column names to positions (default: table order).
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& name : stmt.columns) {
      size_t idx = schema.FindUnqualified(name);
      if (idx == Schema::kNpos) {
        return Status::BindError("column '" + name +
                                 "' is not a column of '" + stmt.table + "'");
      }
      positions.push_back(idx);
    }
  }

  // Produce the incoming rows.
  std::vector<Row> incoming;
  if (!stmt.values.empty()) {
    Schema empty;
    Row no_input;
    for (const auto& exprs : stmt.values) {
      if (exprs.size() != positions.size()) {
        return Status::BindError(
            StrFormat("INSERT expects %zu values per row, got %zu",
                      positions.size(), exprs.size()));
      }
      Row row(schema.size());
      for (size_t i = 0; i < exprs.size(); ++i) {
        sql::ExprPtr folded = sql::CloneExpr(*exprs[i]);
        Planner planner = MakePlanner();
        BORNSQL_RETURN_IF_ERROR(planner.FoldSubqueries(folded.get()));
        BORNSQL_ASSIGN_OR_RETURN(exec::BoundExprPtr bound,
                                 BindExpr(*folded, empty));
        BORNSQL_ASSIGN_OR_RETURN(row[positions[i]],
                                 exec::Eval(*bound, no_input));
      }
      incoming.push_back(std::move(row));
    }
  } else {
    // The select's output stays chunked: each inserted row is built exactly
    // once, remapped into table column order with values moved out of the
    // buffered columns. (The chunks are fully materialized before any row
    // is inserted, so a select reading the target table sees its
    // pre-statement contents.)
    BORNSQL_ASSIGN_OR_RETURN(exec::MaterializedChunks data,
                             ExecSelectToChunks(*stmt.select, profile));
    if (data.row_count > 0 && data.schema.size() != positions.size()) {
      return Status::BindError(
          StrFormat("INSERT expects %zu columns, SELECT produced %zu",
                    positions.size(), data.schema.size()));
    }
    incoming.reserve(data.row_count);
    for (exec::DataChunk& chunk : data.chunks) {
      for (size_t i = 0; i < chunk.size(); ++i) {
        Row row(schema.size());
        for (size_t c = 0; c < positions.size(); ++c) {
          row[positions[c]] = std::move(chunk.column(c)[i]);
        }
        incoming.push_back(std::move(row));
      }
      chunk.Clear();
    }
  }
  for (Row& row : incoming) {
    BORNSQL_RETURN_IF_ERROR(CoerceRow(*table, &row));
  }

  // ON CONFLICT setup.
  exec::BoundExprPtr noop;
  std::vector<std::pair<size_t, exec::BoundExprPtr>> conflict_sets;
  Schema conflict_schema;
  if (stmt.on_conflict != nullptr) {
    if (!table->has_unique_key()) {
      return Status::BindError("ON CONFLICT requires a unique key on '" +
                               stmt.table + "'");
    }
    // The target column set must match the table's unique key.
    std::vector<size_t> targets;
    for (const std::string& name : stmt.on_conflict->target_columns) {
      size_t idx = schema.FindUnqualified(name);
      if (idx == Schema::kNpos) {
        return Status::BindError("ON CONFLICT column '" + name +
                                 "' is not a column of '" + stmt.table + "'");
      }
      targets.push_back(idx);
    }
    std::vector<size_t> key = table->key_columns();
    std::sort(targets.begin(), targets.end());
    std::sort(key.begin(), key.end());
    if (targets != key) {
      return Status::BindError(
          "ON CONFLICT target does not match the table's unique key");
    }
    if (!stmt.on_conflict->do_nothing) {
      // SET expressions see the existing row under the table's name and the
      // incoming row under 'excluded'.
      conflict_schema = schema.WithQualifier(stmt.table);
      for (const Column& c : schema.columns()) {
        conflict_schema.Add(Column{"excluded", c.name, c.type});
      }
      for (const auto& [col, expr] : stmt.on_conflict->set_clauses) {
        size_t idx = schema.FindUnqualified(col);
        if (idx == Schema::kNpos) {
          return Status::BindError("SET column '" + col +
                                   "' is not a column of '" + stmt.table +
                                   "'");
        }
        BORNSQL_ASSIGN_OR_RETURN(exec::BoundExprPtr bound,
                                 BindExpr(*expr, conflict_schema));
        conflict_sets.emplace_back(idx, std::move(bound));
      }
    }
  }

  size_t affected = 0;
  for (Row& row : incoming) {
    if (stmt.on_conflict != nullptr && table->has_unique_key()) {
      size_t existing = table->FindConflict(row);
      if (existing != storage::Table::kNpos) {
        if (stmt.on_conflict->do_nothing) continue;
        // DO UPDATE: evaluate SET expressions over (existing ++ incoming).
        const Row& old_row = table->rows()[existing];
        Row combined;
        combined.reserve(old_row.size() + row.size());
        combined.insert(combined.end(), old_row.begin(), old_row.end());
        combined.insert(combined.end(), row.begin(), row.end());
        Row updated = old_row;
        for (const auto& [idx, expr] : conflict_sets) {
          BORNSQL_ASSIGN_OR_RETURN(updated[idx], exec::Eval(*expr, combined));
        }
        BORNSQL_RETURN_IF_ERROR(CoerceRow(*table, &updated));
        BORNSQL_RETURN_IF_ERROR(table->UpdateRow(existing, std::move(updated)));
        ++affected;
        continue;
      }
    }
    BORNSQL_RETURN_IF_ERROR(table->Insert(std::move(row)));
    ++affected;
  }
  QueryResult out;
  out.rows_affected = affected;
  return out;
}

Result<QueryResult> Database::RunUpdate(const sql::UpdateStmt& stmt) {
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                           catalog_->GetTable(stmt.table));
  Schema schema = table->schema().WithQualifier(stmt.table);
  Planner planner = MakePlanner();

  exec::BoundExprPtr where;
  if (stmt.where != nullptr) {
    sql::ExprPtr folded = sql::CloneExpr(*stmt.where);
    BORNSQL_RETURN_IF_ERROR(planner.FoldSubqueries(folded.get()));
    BORNSQL_ASSIGN_OR_RETURN(where, BindExpr(*folded, schema));
  }
  std::vector<std::pair<size_t, exec::BoundExprPtr>> sets;
  for (const auto& [col, expr] : stmt.set_clauses) {
    size_t idx = schema.FindUnqualified(col);
    if (idx == Schema::kNpos) {
      return Status::BindError("SET column '" + col +
                               "' is not a column of '" + stmt.table + "'");
    }
    sql::ExprPtr folded = sql::CloneExpr(*expr);
    BORNSQL_RETURN_IF_ERROR(planner.FoldSubqueries(folded.get()));
    BORNSQL_ASSIGN_OR_RETURN(exec::BoundExprPtr bound,
                             BindExpr(*folded, schema));
    sets.emplace_back(idx, std::move(bound));
  }

  // Two-phase: evaluate all updates first so row mutation cannot affect
  // later predicate evaluation.
  std::vector<std::pair<size_t, Row>> updates;
  for (size_t i = 0; i < table->rows().size(); ++i) {
    const Row& row = table->rows()[i];
    if (where != nullptr) {
      BORNSQL_ASSIGN_OR_RETURN(Value v, exec::Eval(*where, row));
      if (v.is_null() || !v.Truthy()) continue;
    }
    Row updated = row;
    for (const auto& [idx, expr] : sets) {
      BORNSQL_ASSIGN_OR_RETURN(updated[idx], exec::Eval(*expr, row));
    }
    BORNSQL_RETURN_IF_ERROR(CoerceRow(*table, &updated));
    updates.emplace_back(i, std::move(updated));
  }
  for (auto& [idx, row] : updates) {
    BORNSQL_RETURN_IF_ERROR(table->UpdateRow(idx, std::move(row)));
  }
  QueryResult out;
  out.rows_affected = updates.size();
  return out;
}

Result<QueryResult> Database::RunDelete(const sql::DeleteStmt& stmt) {
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                           catalog_->GetTable(stmt.table));
  Schema schema = table->schema().WithQualifier(stmt.table);

  std::vector<bool> flags(table->rows().size(), false);
  if (stmt.where == nullptr) {
    flags.assign(table->rows().size(), true);
  } else {
    Planner planner = MakePlanner();
    sql::ExprPtr folded = sql::CloneExpr(*stmt.where);
    BORNSQL_RETURN_IF_ERROR(planner.FoldSubqueries(folded.get()));
    BORNSQL_ASSIGN_OR_RETURN(exec::BoundExprPtr where,
                             BindExpr(*folded, schema));
    for (size_t i = 0; i < table->rows().size(); ++i) {
      BORNSQL_ASSIGN_OR_RETURN(Value v,
                               exec::Eval(*where, table->rows()[i]));
      flags[i] = !v.is_null() && v.Truthy();
    }
  }
  QueryResult out;
  out.rows_affected = table->DeleteRows(flags);
  return out;
}

}  // namespace bornsql::engine
