// Statement-text normalization for born_stat_statements.
//
// Executions are aggregated per normalized statement, pg_stat_statements
// style: literals are replaced by '?', whitespace/comments collapse (they
// never reach the token stream), and keywords keep the lexer's upper-case
// spelling. Two executions of "select 1" and "SELECT   2;" therefore share
// the key "SELECT ?".
//
// Lives in the engine layer (not obs) because it needs the SQL lexer, and
// the obs library deliberately depends only on common.
#ifndef BORNSQL_ENGINE_SQL_TEXT_H_
#define BORNSQL_ENGINE_SQL_TEXT_H_

#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/token.h"

namespace bornsql::engine {

// Renders tokens[begin, end) as normalized statement text. Skips semicolons
// and EOF; literals become '?'.
std::string NormalizeTokens(const std::vector<sql::Token>& tokens,
                            size_t begin, size_t end);

// Splits a script's token stream on ';' into one normalized string per
// statement (empty runs are dropped, matching the parser's behaviour).
std::vector<std::string> NormalizeScriptTokens(
    const std::vector<sql::Token>& tokens);

// Statement key for pre-parsed statements executed via
// Database::ExecuteStatement, where the original text is unavailable —
// e.g. "<prepared INSERT INTO weights>". Coarser than token normalization
// but stable, so hot prepared loops still aggregate into one entry.
std::string FallbackStatementKey(const sql::Statement& stmt);

}  // namespace bornsql::engine

#endif  // BORNSQL_ENGINE_SQL_TEXT_H_
