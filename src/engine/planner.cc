#include "engine/planner.h"

#include <utility>

#include "engine/binder.h"
#include "engine/lowering.h"
#include "engine/optimizer.h"

namespace bornsql::engine {

using exec::OperatorPtr;

LogicalBuildHooks Planner::MakeHooks(bool optimize) {
  LogicalBuildHooks hooks;
  if (optimize) {
    hooks.optimize = [this](plan::LogicalNode* root) {
      Optimizer opt(config_, opt_stats_, recorder_, trace_);
      opt.set_validation_log(validation_log_);
      return opt.Run(root);
    };
  }
  hooks.execute =
      [this](plan::LogicalPtr root) -> Result<exec::MaterializedResult> {
    Optimizer opt(config_, opt_stats_, recorder_, trace_);
    opt.set_validation_log(validation_log_);
    BORNSQL_RETURN_IF_ERROR(opt.Run(root.get()));
    Lowering lowering(config_, system_views_);
    BORNSQL_ASSIGN_OR_RETURN(OperatorPtr op, lowering.Lower(*root));
    op->SetVectorSize(config_->vector_size);
    return exec::Drain(*op);
  };
  return hooks;
}

Result<OperatorPtr> Planner::PlanSelect(const sql::SelectStmt& stmt) {
  BORNSQL_ASSIGN_OR_RETURN(plan::LogicalPlan lp, BuildLogical(stmt));
  BORNSQL_RETURN_IF_ERROR(OptimizeLogical(&lp));
  return LowerLogical(lp);
}

Status Planner::FoldSubqueries(sql::Expr* expr) {
  LogicalBuilder builder(catalog_, config_, system_views_, opt_stats_,
                         MakeHooks(/*optimize=*/true));
  return builder.FoldSubqueries(expr);
}

Result<plan::LogicalPlan> Planner::BuildLogical(const sql::SelectStmt& stmt,
                                                bool optimize_ctes) {
  LogicalBuilder builder(catalog_, config_, system_views_, opt_stats_,
                         MakeHooks(optimize_ctes));
  return builder.Build(stmt);
}

Status Planner::OptimizeLogical(plan::LogicalPlan* plan) {
  Optimizer opt(config_, opt_stats_, recorder_, trace_);
  opt.set_validation_log(validation_log_);
  return opt.Run(plan);
}

Result<OperatorPtr> Planner::LowerLogical(const plan::LogicalPlan& plan) {
  Lowering lowering(config_, system_views_);
  return lowering.Lower(*plan.root);
}

}  // namespace bornsql::engine
