#include "engine/planner.h"

#include <cassert>

#include "common/strings.h"
#include "engine/binder.h"

namespace bornsql::engine {

using exec::BoundExprPtr;
using exec::Operator;
using exec::OperatorPtr;

namespace internal {

struct CteCell {
  const sql::SelectStmt* stmt = nullptr;
  // Materialize mode: plan built on first reference, result shared by all
  // gates of this query.
  OperatorPtr plan;
  std::shared_ptr<exec::MaterializedResult> result;
};

}  // namespace internal

namespace {

// Exposes the child's rows under a new qualifier (table alias).
class RelabelOp : public Operator {
 public:
  RelabelOp(OperatorPtr child, const std::string& qualifier)
      : child_(std::move(child)),
        schema_(child_->schema().WithQualifier(qualifier)) {}
  const Schema& schema() const override { return schema_; }
  std::string DebugString() const override {
    return StrFormat("Relabel(%s)",
                     schema_.size() > 0 ? schema_.column(0).qualifier.c_str()
                                        : "");
  }
  std::vector<Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* out) override { return child_->Next(out); }

 private:
  OperatorPtr child_;
  Schema schema_;
};

// Scan over a shared, lazily-computed CTE result. The first gate to Open()
// runs the CTE's plan; later gates (and re-opens) reuse the rows.
class CteGateOp : public Operator {
 public:
  CteGateOp(std::shared_ptr<internal::CteCell> cell, std::string qualifier)
      : cell_(std::move(cell)),
        schema_(cell_->plan->schema().WithQualifier(qualifier)) {}
  const Schema& schema() const override { return schema_; }
  std::string DebugString() const override {
    return StrFormat("CteScan(%s%s)",
                     schema_.size() > 0 ? schema_.column(0).qualifier.c_str()
                                        : "",
                     cell_->result != nullptr ? ", materialized" : "");
  }
  std::vector<Operator*> children() const override {
    return {cell_->plan.get()};
  }

 protected:
  Status OpenImpl() override {
    if (cell_->result == nullptr) {
      auto drained = exec::Drain(*cell_->plan);
      if (!drained.ok()) return drained.status();
      cell_->result = std::make_shared<exec::MaterializedResult>(
          std::move(drained).value());
    }
    pos_ = 0;
    RecordPeakEntries(cell_->result->rows.size());
    return Status::OK();
  }
  Result<bool> NextImpl(Row* out) override {
    if (pos_ >= cell_->result->rows.size()) return false;
    *out = cell_->result->rows[pos_++];
    return true;
  }

 private:
  std::shared_ptr<internal::CteCell> cell_;
  Schema schema_;
  size_t pos_ = 0;
};

// RAII push/pop of one CTE scope.
class ScopeGuard {
 public:
  ScopeGuard(std::vector<std::unordered_map<
                 std::string, std::shared_ptr<internal::CteCell>>>* scopes)
      : scopes_(scopes) {
    scopes_->emplace_back();
  }
  ~ScopeGuard() { scopes_->pop_back(); }

 private:
  std::vector<std::unordered_map<std::string,
                                 std::shared_ptr<internal::CteCell>>>* scopes_;
};

// True if `e` is `lhs = rhs` with lhs bindable to `left` and rhs to `right`
// (or flipped); outputs the side-ordered subexpressions.
bool IsEquiPair(const sql::Expr& e, const Schema& left, const Schema& right,
                const sql::Expr** lexpr, const sql::Expr** rexpr) {
  if (e.kind != sql::ExprKind::kBinary ||
      e.binary_op != sql::BinaryOp::kEq) {
    return false;
  }
  if (BindsTo(*e.left, left) && BindsTo(*e.right, right)) {
    *lexpr = e.left.get();
    *rexpr = e.right.get();
    return true;
  }
  if (BindsTo(*e.left, right) && BindsTo(*e.right, left)) {
    *lexpr = e.right.get();
    *rexpr = e.left.get();
    return true;
  }
  return false;
}

// Collects distinct (structurally) aggregate calls in `e` into `out`.
void CollectAggCalls(const sql::Expr& e, std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kFunctionCall) {
    exec::AggFunc agg;
    if (exec::LookupAggFunc(e.func_name, &agg)) {
      for (const sql::Expr* seen : *out) {
        if (ExprEquals(*seen, e)) return;
      }
      out->push_back(&e);
      return;  // no nested aggregates
    }
  }
  if (e.kind == sql::ExprKind::kWindow) return;
  if (e.left) CollectAggCalls(*e.left, out);
  if (e.right) CollectAggCalls(*e.right, out);
  for (const auto& a : e.args) CollectAggCalls(*a, out);
  for (const auto& [w, t] : e.when_clauses) {
    CollectAggCalls(*w, out);
    CollectAggCalls(*t, out);
  }
  if (e.else_clause) CollectAggCalls(*e.else_clause, out);
}

void CollectWindowCalls(const sql::Expr& e,
                        std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kWindow) {
    for (const sql::Expr* seen : *out) {
      if (ExprEquals(*seen, e)) return;
    }
    out->push_back(&e);
    return;
  }
  if (e.left) CollectWindowCalls(*e.left, out);
  if (e.right) CollectWindowCalls(*e.right, out);
  for (const auto& a : e.args) CollectWindowCalls(*a, out);
  for (const auto& [w, t] : e.when_clauses) {
    CollectWindowCalls(*w, out);
    CollectWindowCalls(*t, out);
  }
  if (e.else_clause) CollectWindowCalls(*e.else_clause, out);
}

// Rewrites `e`, replacing subtrees equal to replacements[i].first with a
// fresh ColumnRef replacements[i].second = (qualifier, name).
sql::ExprPtr RewriteWithReplacements(
    const sql::Expr& e,
    const std::vector<std::pair<const sql::Expr*,
                                std::pair<std::string, std::string>>>&
        replacements) {
  for (const auto& [target, ref] : replacements) {
    if (ExprEquals(*target, e)) {
      return sql::MakeColumnRef(ref.first, ref.second);
    }
  }
  sql::ExprPtr out = sql::CloneExpr(e);
  // Rewrite children in place on the clone.
  if (out->left) out->left = RewriteWithReplacements(*out->left, replacements);
  if (out->right) {
    out->right = RewriteWithReplacements(*out->right, replacements);
  }
  for (auto& a : out->args) a = RewriteWithReplacements(*a, replacements);
  for (auto& [w, t] : out->when_clauses) {
    w = RewriteWithReplacements(*w, replacements);
    t = RewriteWithReplacements(*t, replacements);
  }
  if (out->else_clause) {
    out->else_clause = RewriteWithReplacements(*out->else_clause, replacements);
  }
  return out;
}

// If every key is a bare column of the (bare-scan) table and the column set
// is covered by a secondary index, returns the index id; kNpos otherwise.
size_t MatchIndex(const storage::Table* table,
                  const std::vector<BoundExprPtr>& keys) {
  if (table == nullptr) return storage::Table::kNpos;
  std::vector<size_t> cols;
  for (const BoundExprPtr& k : keys) {
    if (k == nullptr || k->kind != exec::BoundKind::kColumn) {
      return storage::Table::kNpos;
    }
    cols.push_back(k->column_index);
  }
  return table->FindIndexOn(cols);
}

// Orders the probing side's key expressions to match the index column
// layout: outer key p pairs with inner key p, and inner key p is the bare
// column inner_keys[p]->column_index.
std::vector<BoundExprPtr> ReorderOuterKeys(
    const std::vector<size_t>& index_cols,
    std::vector<BoundExprPtr>* inner_keys,
    std::vector<BoundExprPtr>* outer_keys) {
  std::vector<BoundExprPtr> out;
  for (size_t ic : index_cols) {
    for (size_t p = 0; p < inner_keys->size(); ++p) {
      if ((*inner_keys)[p] != nullptr &&
          (*inner_keys)[p]->column_index == ic) {
        out.push_back(std::move((*outer_keys)[p]));
        (*inner_keys)[p].reset();
        break;
      }
    }
  }
  return out;
}

struct ExpandedItem {
  sql::ExprPtr expr;
  std::string name;
};

// ---- derived-table pull-up ------------------------------------------------
//
// A derived table that is a plain projection of one base table is merged
// into the outer query: the ref becomes the base table itself and every
// outer reference to the alias is replaced by the projected expression.
// This is what lets an equi join against the derived table turn into an
// index probe on the base table — the optimization that makes single-item
// inference cheap after deployment (Fig. 6).

// True if `stmt` is a plain projection of a single named table.
bool IsSimpleProjection(const sql::SelectStmt& stmt) {
  if (stmt.cores.size() != 1 || !stmt.ctes.empty() ||
      !stmt.order_by.empty() || stmt.limit != nullptr ||
      stmt.offset != nullptr) {
    return false;
  }
  const sql::SelectCore& c = stmt.cores[0];
  if (c.distinct || c.where != nullptr || !c.group_by.empty() ||
      c.having != nullptr) {
    return false;
  }
  if (c.from.size() != 1 || c.from[0].subquery != nullptr ||
      c.from[0].join_condition != nullptr) {
    return false;
  }
  for (const sql::SelectItem& item : c.items) {
    if (item.is_star || item.expr == nullptr) return false;
    if (ContainsAggregate(*item.expr) || ContainsWindow(*item.expr)) {
      return false;
    }
  }
  return true;
}

void RequalifyColumns(sql::Expr* e, const std::string& qualifier) {
  if (e->kind == sql::ExprKind::kColumnRef) {
    e->qualifier = qualifier;
    return;
  }
  if (e->left) RequalifyColumns(e->left.get(), qualifier);
  if (e->right) RequalifyColumns(e->right.get(), qualifier);
  for (auto& a : e->args) RequalifyColumns(a.get(), qualifier);
  for (auto& p : e->partition_by) RequalifyColumns(p.get(), qualifier);
  for (auto& [oe, d] : e->window_order_by) RequalifyColumns(oe.get(), qualifier);
  for (auto& [w, t] : e->when_clauses) {
    RequalifyColumns(w.get(), qualifier);
    RequalifyColumns(t.get(), qualifier);
  }
  if (e->else_clause) RequalifyColumns(e->else_clause.get(), qualifier);
}

// Collects the column references in `e` into qualified/unqualified name sets.
void CollectColumnRefs(const sql::Expr& e,
                       std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kColumnRef) {
    out->push_back(&e);
    return;
  }
  if (e.left) CollectColumnRefs(*e.left, out);
  if (e.right) CollectColumnRefs(*e.right, out);
  for (const auto& a : e.args) CollectColumnRefs(*a, out);
  for (const auto& p : e.partition_by) CollectColumnRefs(*p, out);
  for (const auto& [oe, d] : e.window_order_by) CollectColumnRefs(*oe, out);
  for (const auto& [w, t] : e.when_clauses) {
    CollectColumnRefs(*w, out);
    CollectColumnRefs(*t, out);
  }
  if (e.else_clause) CollectColumnRefs(*e.else_clause, out);
}

// Replaces `alias.col` references inside *e using the substitution map.
void SubstituteAliasRefs(
    sql::ExprPtr* e, const std::string& alias,
    const std::unordered_map<std::string, const sql::Expr*>& subs) {
  if ((*e)->kind == sql::ExprKind::kColumnRef) {
    if (EqualsIgnoreCase((*e)->qualifier, alias)) {
      auto it = subs.find(AsciiToLower((*e)->column));
      if (it != subs.end()) *e = sql::CloneExpr(*it->second);
    }
    return;
  }
  sql::Expr* node = e->get();
  if (node->left) SubstituteAliasRefs(&node->left, alias, subs);
  if (node->right) SubstituteAliasRefs(&node->right, alias, subs);
  for (auto& a : node->args) SubstituteAliasRefs(&a, alias, subs);
  for (auto& p : node->partition_by) SubstituteAliasRefs(&p, alias, subs);
  for (auto& [oe, d] : node->window_order_by) {
    SubstituteAliasRefs(&oe, alias, subs);
  }
  for (auto& [w, t] : node->when_clauses) {
    SubstituteAliasRefs(&w, alias, subs);
    SubstituteAliasRefs(&t, alias, subs);
  }
  if (node->else_clause) {
    SubstituteAliasRefs(&node->else_clause, alias, subs);
  }
}

// Pulls simple-projection derived tables up into `core`, rewriting
// `order_exprs` alongside. Conservative: bails out per-ref on stars or on
// references it cannot prove safe.
void PullUpSimpleSubqueries(sql::SelectCore* core,
                            std::vector<sql::ExprPtr>* order_exprs) {
  // Any star in the outer projection makes column provenance ambiguous.
  for (const sql::SelectItem& item : core->items) {
    if (item.is_star) return;
  }
  int counter = 0;
  for (sql::TableRef& ref : core->from) {
    if (ref.subquery == nullptr || ref.alias.empty()) continue;
    if (ref.join_kind == sql::TableRef::JoinKind::kLeft) continue;
    if (!IsSimpleProjection(*ref.subquery)) continue;
    const sql::SelectCore& inner = ref.subquery->cores[0];

    // Output map: exposed column name -> inner expression.
    std::unordered_map<std::string, const sql::Expr*> subs;
    bool nameable = true;
    for (const sql::SelectItem& item : inner.items) {
      std::string name = item.alias;
      if (name.empty() && item.expr->kind == sql::ExprKind::kColumnRef) {
        name = item.expr->column;
      }
      if (name.empty()) {
        nameable = false;
        break;
      }
      subs[AsciiToLower(name)] = item.expr.get();
    }
    if (!nameable) continue;

    // Gather every outer expression that might reference the alias.
    std::vector<sql::ExprPtr*> outer_exprs;
    for (sql::SelectItem& item : core->items) outer_exprs.push_back(&item.expr);
    if (core->where) outer_exprs.push_back(&core->where);
    for (sql::ExprPtr& g : core->group_by) outer_exprs.push_back(&g);
    if (core->having) outer_exprs.push_back(&core->having);
    for (sql::TableRef& other : core->from) {
      if (other.join_condition) outer_exprs.push_back(&other.join_condition);
    }
    for (sql::ExprPtr& o : *order_exprs) outer_exprs.push_back(&o);

    // Safety: every qualified use of the alias must resolve in the map, and
    // no *unqualified* reference may collide with an output name (it might
    // belong to the subquery).
    bool safe = true;
    for (sql::ExprPtr* e : outer_exprs) {
      std::vector<const sql::Expr*> refs;
      CollectColumnRefs(**e, &refs);
      for (const sql::Expr* r : refs) {
        if (EqualsIgnoreCase(r->qualifier, ref.alias)) {
          if (subs.find(AsciiToLower(r->column)) == subs.end()) safe = false;
        } else if (r->qualifier.empty() &&
                   subs.find(AsciiToLower(r->column)) != subs.end()) {
          safe = false;
        }
      }
    }
    if (!safe) continue;

    // Perform the pull-up: requalify the inner expressions onto a fresh
    // alias for the base table, substitute, and swap the ref.
    std::string new_alias = StrFormat("#pu%d_%s", counter++,
                                      ref.alias.c_str());
    std::vector<sql::ExprPtr> owned;
    std::unordered_map<std::string, const sql::Expr*> requalified;
    for (auto& [name, expr] : subs) {
      sql::ExprPtr clone = sql::CloneExpr(*expr);
      RequalifyColumns(clone.get(), new_alias);
      requalified[name] = clone.get();
      owned.push_back(std::move(clone));
    }
    for (sql::ExprPtr* e : outer_exprs) {
      SubstituteAliasRefs(e, ref.alias, requalified);
    }
    ref.table_name = inner.from[0].table_name;
    ref.alias = new_alias;
    ref.subquery.reset();
  }
}

// Expands stars against `schema` and names every output column.
Result<std::vector<ExpandedItem>> ExpandItems(
    const std::vector<sql::SelectItem>& items, const Schema& schema) {
  std::vector<ExpandedItem> out;
  for (size_t i = 0; i < items.size(); ++i) {
    const sql::SelectItem& item = items[i];
    if (item.is_star) {
      bool matched = false;
      for (const Column& c : schema.columns()) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(c.qualifier, item.star_qualifier)) {
          continue;
        }
        ExpandedItem e;
        e.expr = sql::MakeColumnRef(c.qualifier, c.name);
        e.name = c.name;
        out.push_back(std::move(e));
        matched = true;
      }
      if (!matched) {
        return Status::BindError("no columns match '" + item.star_qualifier +
                                 ".*'");
      }
      continue;
    }
    ExpandedItem e;
    e.expr = sql::CloneExpr(*item.expr);
    if (!item.alias.empty()) {
      e.name = item.alias;
    } else if (item.expr->kind == sql::ExprKind::kColumnRef) {
      e.name = item.expr->column;
    } else {
      e.name = StrFormat("col%zu", i + 1);
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

std::shared_ptr<internal::CteCell> Planner::FindCte(
    const std::string& name) const {
  std::string key = AsciiToLower(name);
  for (auto it = cte_scopes_.rbegin(); it != cte_scopes_.rend(); ++it) {
    auto found = it->find(key);
    if (found != it->end()) return found->second;
  }
  return nullptr;
}

Result<OperatorPtr> Planner::PlanSelect(const sql::SelectStmt& stmt) {
  return PlanStmt(stmt);
}

Status Planner::FoldSubqueries(sql::Expr* e) {
  switch (e->kind) {
    case sql::ExprKind::kScalarSubquery: {
      BORNSQL_ASSIGN_OR_RETURN(OperatorPtr plan, PlanStmt(*e->subquery));
      BORNSQL_ASSIGN_OR_RETURN(exec::MaterializedResult result,
                               exec::Drain(*plan));
      if (result.schema.size() != 1) {
        return Status::BindError("scalar subquery must return one column");
      }
      if (result.rows.size() > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      Value v = result.rows.empty() ? Value::Null() : result.rows[0][0];
      e->kind = sql::ExprKind::kLiteral;
      e->literal = std::move(v);
      e->subquery.reset();
      return Status::OK();
    }
    case sql::ExprKind::kInSubquery: {
      BORNSQL_ASSIGN_OR_RETURN(OperatorPtr plan, PlanStmt(*e->subquery));
      BORNSQL_ASSIGN_OR_RETURN(exec::MaterializedResult result,
                               exec::Drain(*plan));
      if (result.schema.size() != 1) {
        return Status::BindError("IN subquery must return one column");
      }
      e->kind = sql::ExprKind::kInSet;
      e->set_values.clear();
      e->set_values.reserve(result.rows.size());
      for (Row& row : result.rows) e->set_values.push_back(std::move(row[0]));
      e->subquery.reset();
      return FoldSubqueries(e->left.get());
    }
    case sql::ExprKind::kExists: {
      BORNSQL_ASSIGN_OR_RETURN(OperatorPtr plan, PlanStmt(*e->subquery));
      BORNSQL_ASSIGN_OR_RETURN(exec::MaterializedResult result,
                               exec::Drain(*plan));
      e->kind = sql::ExprKind::kLiteral;
      e->literal = Value::Bool(!result.rows.empty());
      e->subquery.reset();
      return Status::OK();
    }
    default:
      break;
  }
  if (e->left) BORNSQL_RETURN_IF_ERROR(FoldSubqueries(e->left.get()));
  if (e->right) BORNSQL_RETURN_IF_ERROR(FoldSubqueries(e->right.get()));
  for (auto& a : e->args) BORNSQL_RETURN_IF_ERROR(FoldSubqueries(a.get()));
  for (auto& p : e->partition_by) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(p.get()));
  }
  for (auto& [oe, d] : e->window_order_by) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(oe.get()));
  }
  for (auto& [w, t] : e->when_clauses) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(w.get()));
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(t.get()));
  }
  if (e->else_clause) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(e->else_clause.get()));
  }
  return Status::OK();
}

Result<OperatorPtr> Planner::PlanStmt(const sql::SelectStmt& stmt) {
  ScopeGuard scope(&cte_scopes_);
  for (const sql::CommonTableExpr& cte : stmt.ctes) {
    auto cell = std::make_shared<internal::CteCell>();
    cell->stmt = cte.select.get();
    cte_scopes_.back()[AsciiToLower(cte.name)] = std::move(cell);
  }

  // Cores (UNION ALL chain). A single core handles ORDER BY itself so sort
  // keys may reference non-projected input columns.
  OperatorPtr op;
  if (stmt.cores.size() == 1) {
    BORNSQL_ASSIGN_OR_RETURN(op, PlanCore(stmt.cores[0], &stmt.order_by));
  } else {
    std::vector<OperatorPtr> children;
    size_t arity = 0;
    for (size_t i = 0; i < stmt.cores.size(); ++i) {
      BORNSQL_ASSIGN_OR_RETURN(OperatorPtr child,
                               PlanCore(stmt.cores[i], nullptr));
      if (i == 0) {
        arity = child->schema().size();
      } else if (child->schema().size() != arity) {
        return Status::BindError(
            "UNION ALL operands have different column counts");
      }
      children.push_back(std::move(child));
    }
    op = std::make_unique<exec::UnionAllOp>(std::move(children));

    // ORDER BY over a UNION binds against the union's output schema only.
    if (!stmt.order_by.empty()) {
      std::vector<exec::SortKey> keys;
      for (const sql::OrderItem& item : stmt.order_by) {
        exec::SortKey key;
        key.desc = item.desc;
        if (item.expr->kind == sql::ExprKind::kLiteral &&
            item.expr->literal.is_int()) {
          int64_t ordinal = item.expr->literal.AsInt();
          if (ordinal < 1 ||
              ordinal > static_cast<int64_t>(op->schema().size())) {
            return Status::BindError(
                StrFormat("ORDER BY position %lld is out of range",
                          static_cast<long long>(ordinal)));
          }
          key.expr = exec::BoundColumn(static_cast<size_t>(ordinal - 1));
        } else {
          BORNSQL_ASSIGN_OR_RETURN(key.expr,
                                   BindExpr(*item.expr, op->schema()));
        }
        keys.push_back(std::move(key));
      }
      op = std::make_unique<exec::SortOp>(std::move(op), std::move(keys));
    }
  }

  if (stmt.limit != nullptr) {
    BORNSQL_ASSIGN_OR_RETURN(Value limit_v, EvalConstExpr(*stmt.limit));
    BORNSQL_ASSIGN_OR_RETURN(Value limit_i, limit_v.CoerceTo(ValueType::kInt));
    int64_t offset = 0;
    if (stmt.offset != nullptr) {
      BORNSQL_ASSIGN_OR_RETURN(Value off_v, EvalConstExpr(*stmt.offset));
      BORNSQL_ASSIGN_OR_RETURN(Value off_i, off_v.CoerceTo(ValueType::kInt));
      offset = off_i.AsInt();
    }
    op = std::make_unique<exec::LimitOp>(std::move(op), limit_i.AsInt(),
                                         offset);
  }
  return op;
}

Result<OperatorPtr> Planner::PlanJoin(OperatorPtr left, OperatorPtr right,
                                      std::vector<BoundExprPtr> lkeys,
                                      std::vector<BoundExprPtr> rkeys,
                                      exec::JoinType type) {
  switch (config_->join_strategy) {
    case JoinStrategy::kSortMerge:
      return OperatorPtr(std::make_unique<exec::SortMergeJoinOp>(
          std::move(left), std::move(right), std::move(lkeys),
          std::move(rkeys), type));
    case JoinStrategy::kHash:
    case JoinStrategy::kNestedLoop:  // nested-loop never extracts keys
      return OperatorPtr(std::make_unique<exec::HashJoinOp>(
          std::move(left), std::move(right), std::move(lkeys),
          std::move(rkeys), type));
  }
  return Status::Internal("bad join strategy");
}

Result<OperatorPtr> Planner::PlanTableRef(const sql::TableRef& ref,
                                          const storage::Table** base_table) {
  *base_table = nullptr;
  if (ref.subquery != nullptr) {
    BORNSQL_ASSIGN_OR_RETURN(OperatorPtr sub, PlanStmt(*ref.subquery));
    return OperatorPtr(
        std::make_unique<RelabelOp>(std::move(sub), ref.alias));
  }
  const std::string qualifier =
      ref.alias.empty() ? ref.table_name : ref.alias;
  if (auto cell = FindCte(ref.table_name)) {
    if (config_->materialize_ctes) {
      if (cell->plan == nullptr) {
        BORNSQL_ASSIGN_OR_RETURN(cell->plan, PlanStmt(*cell->stmt));
      }
      return OperatorPtr(std::make_unique<CteGateOp>(cell, qualifier));
    }
    BORNSQL_ASSIGN_OR_RETURN(OperatorPtr sub, PlanStmt(*cell->stmt));
    return OperatorPtr(
        std::make_unique<RelabelOp>(std::move(sub), qualifier));
  }
  // System views resolve after CTEs but are shadowed by real tables, so a
  // user table that happens to be named born_stat_* keeps working.
  if (system_views_ != nullptr && !catalog_->Exists(ref.table_name) &&
      system_views_->IsSystemView(ref.table_name)) {
    return system_views_->MakeViewScan(ref.table_name, qualifier);
  }
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * table,
                           catalog_->GetTable(ref.table_name));
  Schema schema = table->schema().WithQualifier(qualifier);
  *base_table = table;
  return OperatorPtr(std::make_unique<exec::SeqScanOp>(table, schema));
}

Result<OperatorPtr> Planner::PlanFrom(const sql::SelectCore& core,
                                      std::vector<sql::ExprPtr>* conjuncts) {
  if (core.from.empty()) {
    return OperatorPtr(std::make_unique<exec::SingleRowOp>());
  }

  // Plan every ref first so pushdown can consult their schemas. `bases[i]`
  // is the underlying table while refs[i] is still a bare scan (the
  // precondition for index joins).
  std::vector<OperatorPtr> refs;
  std::vector<const storage::Table*> bases;
  refs.reserve(core.from.size());
  for (const sql::TableRef& ref : core.from) {
    const storage::Table* base = nullptr;
    BORNSQL_ASSIGN_OR_RETURN(OperatorPtr op, PlanTableRef(ref, &base));
    refs.push_back(std::move(op));
    bases.push_back(base);
  }

  // Fold INNER JOIN ... ON conditions into the conjunct pool: for inner
  // joins they are equivalent to WHERE predicates.
  for (const sql::TableRef& ref : core.from) {
    if (ref.join_kind == sql::TableRef::JoinKind::kInner &&
        ref.join_condition != nullptr) {
      SplitConjuncts(sql::CloneExpr(*ref.join_condition), conjuncts);
    }
  }

  // Predicate pushdown: a conjunct that binds to exactly one ref filters
  // that ref before any join. Constant conjuncts go to the first ref.
  for (sql::ExprPtr& c : *conjuncts) {
    if (c == nullptr) continue;
    size_t bind_count = 0;
    size_t bind_ref = 0;
    for (size_t i = 0; i < refs.size(); ++i) {
      if (BindsTo(*c, refs[i]->schema())) {
        ++bind_count;
        bind_ref = i;
      }
    }
    Schema empty;
    if (bind_count == refs.size() && BindsTo(*c, empty)) {
      bind_count = 1;  // constant predicate: apply once, on the first ref
      bind_ref = 0;
    }
    if (bind_count == 1) {
      BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr pred,
                               BindExpr(*c, refs[bind_ref]->schema()));
      refs[bind_ref] = std::make_unique<exec::FilterOp>(
          std::move(refs[bind_ref]), std::move(pred));
      bases[bind_ref] = nullptr;  // no longer a bare scan
      c = nullptr;
    }
  }

  // Applies any remaining conjuncts that bind to `op`'s schema as a filter.
  // `base` (nullable) is cleared when a filter is added.
  auto apply_bindable = [&](OperatorPtr op, const storage::Table** base)
      -> Result<OperatorPtr> {
    for (sql::ExprPtr& c : *conjuncts) {
      if (c == nullptr) continue;
      if (BindsTo(*c, op->schema())) {
        BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr pred,
                                 BindExpr(*c, op->schema()));
        op = std::make_unique<exec::FilterOp>(std::move(op), std::move(pred));
        if (base != nullptr) *base = nullptr;
        c = nullptr;
      }
    }
    return op;
  };

  OperatorPtr current = std::move(refs[0]);
  const storage::Table* current_base = bases[0];
  BORNSQL_ASSIGN_OR_RETURN(current,
                           apply_bindable(std::move(current), &current_base));

  for (size_t i = 1; i < refs.size(); ++i) {
    OperatorPtr right = std::move(refs[i]);
    const storage::Table* right_base = bases[i];
    const sql::TableRef& ref = core.from[i];

    if (ref.join_kind == sql::TableRef::JoinKind::kLeft) {
      // LEFT JOIN keeps its ON condition attached to the join itself.
      std::vector<sql::ExprPtr> on;
      if (ref.join_condition != nullptr) {
        SplitConjuncts(sql::CloneExpr(*ref.join_condition), &on);
      }
      std::vector<BoundExprPtr> lkeys, rkeys;
      bool all_equi = config_->join_strategy != JoinStrategy::kNestedLoop;
      if (all_equi) {
        for (const sql::ExprPtr& c : on) {
          const sql::Expr *le = nullptr, *re = nullptr;
          if (!IsEquiPair(*c, current->schema(), right->schema(), &le, &re)) {
            all_equi = false;
            break;
          }
        }
      }
      if (all_equi && !on.empty()) {
        for (const sql::ExprPtr& c : on) {
          const sql::Expr *le = nullptr, *re = nullptr;
          IsEquiPair(*c, current->schema(), right->schema(), &le, &re);
          BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr bl,
                                   BindExpr(*le, current->schema()));
          BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr br,
                                   BindExpr(*re, right->schema()));
          lkeys.push_back(std::move(bl));
          rkeys.push_back(std::move(br));
        }
        BORNSQL_ASSIGN_OR_RETURN(
            current, PlanJoin(std::move(current), std::move(right),
                              std::move(lkeys), std::move(rkeys),
                              exec::JoinType::kLeft));
      } else {
        // Non-equi (or nested-loop strategy) LEFT join: bind the whole ON
        // clause against the concatenated schema.
        BoundExprPtr pred;
        if (ref.join_condition != nullptr) {
          Schema combined =
              Schema::Concat(current->schema(), right->schema());
          BORNSQL_ASSIGN_OR_RETURN(pred,
                                   BindExpr(*ref.join_condition, combined));
        }
        current = std::make_unique<exec::NestedLoopJoinOp>(
            std::move(current), std::move(right), std::move(pred),
            exec::JoinType::kLeft);
      }
      current_base = nullptr;
      BORNSQL_ASSIGN_OR_RETURN(current,
                               apply_bindable(std::move(current), nullptr));
      continue;
    }

    // Comma / INNER / CROSS join: extract equi keys from the pool.
    std::vector<BoundExprPtr> lkeys, rkeys;
    if (config_->join_strategy != JoinStrategy::kNestedLoop) {
      for (sql::ExprPtr& c : *conjuncts) {
        if (c == nullptr) continue;
        const sql::Expr *le = nullptr, *re = nullptr;
        if (IsEquiPair(*c, current->schema(), right->schema(), &le, &re)) {
          BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr bl,
                                   BindExpr(*le, current->schema()));
          BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr br,
                                   BindExpr(*re, right->schema()));
          lkeys.push_back(std::move(bl));
          rkeys.push_back(std::move(br));
          c = nullptr;
        }
      }
    }
    if (!lkeys.empty()) {
      bool joined = false;
      if (config_->join_strategy == JoinStrategy::kHash &&
          config_->use_index_joins) {
        // Probe the indexed side with the other side's rows. Output column
        // order must stay current-then-right either way.
        size_t idx = MatchIndex(right_base, rkeys);
        if (idx != storage::Table::kNpos) {
          Schema inner_schema = right->schema();
          std::vector<BoundExprPtr> outer_keys = ReorderOuterKeys(
              right_base->index_columns(idx), &rkeys, &lkeys);
          current = std::make_unique<exec::IndexJoinOp>(
              std::move(current), right_base, std::move(inner_schema), idx,
              std::move(outer_keys), /*inner_on_left=*/false);
          joined = true;
        } else if ((idx = MatchIndex(current_base, lkeys)) !=
                   storage::Table::kNpos) {
          Schema inner_schema = current->schema();
          std::vector<BoundExprPtr> outer_keys = ReorderOuterKeys(
              current_base->index_columns(idx), &lkeys, &rkeys);
          current = std::make_unique<exec::IndexJoinOp>(
              std::move(right), current_base, std::move(inner_schema), idx,
              std::move(outer_keys), /*inner_on_left=*/true);
          joined = true;
        }
      }
      if (!joined) {
        BORNSQL_ASSIGN_OR_RETURN(
            current,
            PlanJoin(std::move(current), std::move(right), std::move(lkeys),
                     std::move(rkeys), exec::JoinType::kInner));
      }
    } else {
      current = std::make_unique<exec::NestedLoopJoinOp>(
          std::move(current), std::move(right), nullptr,
          exec::JoinType::kCross);
    }
    current_base = nullptr;
    BORNSQL_ASSIGN_OR_RETURN(current,
                             apply_bindable(std::move(current), nullptr));
  }
  return current;
}

Result<OperatorPtr> Planner::PlanCore(
    const sql::SelectCore& original_core,
    const std::vector<sql::OrderItem>* order_by) {
  // Work on a private copy: derived-table pull-up rewrites the core and
  // the ORDER BY expressions in place.
  sql::SelectCore core = sql::CloneCore(original_core);
  std::vector<sql::ExprPtr> order_exprs;
  if (order_by != nullptr) {
    for (const sql::OrderItem& item : *order_by) {
      order_exprs.push_back(sql::CloneExpr(*item.expr));
    }
  }
  PullUpSimpleSubqueries(&core, &order_exprs);

  // Fold uncorrelated subqueries everywhere an expression may hold one.
  for (sql::SelectItem& item : core.items) {
    if (item.expr) BORNSQL_RETURN_IF_ERROR(FoldSubqueries(item.expr.get()));
  }
  if (core.where) BORNSQL_RETURN_IF_ERROR(FoldSubqueries(core.where.get()));
  for (sql::ExprPtr& g : core.group_by) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(g.get()));
  }
  if (core.having) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(core.having.get()));
  }
  for (sql::TableRef& ref : core.from) {
    if (ref.join_condition) {
      BORNSQL_RETURN_IF_ERROR(FoldSubqueries(ref.join_condition.get()));
    }
  }
  for (sql::ExprPtr& o : order_exprs) {
    BORNSQL_RETURN_IF_ERROR(FoldSubqueries(o.get()));
  }

  std::vector<sql::ExprPtr> conjuncts;
  if (core.where != nullptr) {
    SplitConjuncts(std::move(core.where), &conjuncts);
  }
  BORNSQL_ASSIGN_OR_RETURN(OperatorPtr input, PlanFrom(core, &conjuncts));

  // Any conjunct the join planner could not place must bind here.
  for (sql::ExprPtr& c : conjuncts) {
    if (c == nullptr) continue;
    BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr pred, BindExpr(*c, input->schema()));
    input = std::make_unique<exec::FilterOp>(std::move(input),
                                             std::move(pred));
    c = nullptr;
  }

  BORNSQL_ASSIGN_OR_RETURN(std::vector<ExpandedItem> items,
                           ExpandItems(core.items, input->schema()));

  // ---- aggregation ----
  bool has_agg = !core.group_by.empty();
  for (const ExpandedItem& item : items) {
    if (ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (core.having != nullptr && ContainsAggregate(*core.having)) {
    has_agg = true;
  }
  for (const sql::ExprPtr& o : order_exprs) {
    if (ContainsAggregate(*o)) has_agg = true;
  }
  sql::ExprPtr having =
      core.having != nullptr ? sql::CloneExpr(*core.having) : nullptr;

  if (has_agg) {
    const Schema& in_schema = input->schema();
    // Group expressions, with select-alias substitution (PostgreSQL/SQLite
    // allow GROUP BY <output alias>).
    std::vector<sql::ExprPtr> group_exprs;
    for (const sql::ExprPtr& g : core.group_by) {
      sql::ExprPtr expr = sql::CloneExpr(*g);
      if (expr->kind == sql::ExprKind::kColumnRef &&
          expr->qualifier.empty() && !BindsTo(*expr, in_schema)) {
        for (size_t i = 0; i < core.items.size(); ++i) {
          if (!core.items[i].is_star &&
              EqualsIgnoreCase(core.items[i].alias, expr->column)) {
            expr = sql::CloneExpr(*items[i].expr);
            break;
          }
        }
      }
      group_exprs.push_back(std::move(expr));
    }

    std::vector<BoundExprPtr> bound_groups;
    Schema agg_schema;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr b,
                               BindExpr(*group_exprs[i], in_schema));
      Column col;
      if (group_exprs[i]->kind == sql::ExprKind::kColumnRef) {
        col = in_schema.column(b->column_index);
      } else {
        col = Column{"", StrFormat("#g%zu", i), ValueType::kNull};
      }
      agg_schema.Add(col);
      bound_groups.push_back(std::move(b));
    }

    // Aggregate calls across select items, HAVING and ORDER BY. The calls
    // are cloned into owned storage: replacement targets must stay valid
    // while the very expressions they came from are being rewritten.
    std::vector<const sql::Expr*> agg_call_ptrs;
    for (const ExpandedItem& item : items) {
      CollectAggCalls(*item.expr, &agg_call_ptrs);
    }
    if (having != nullptr) CollectAggCalls(*having, &agg_call_ptrs);
    for (const sql::ExprPtr& o : order_exprs) {
      CollectAggCalls(*o, &agg_call_ptrs);
    }
    std::vector<sql::ExprPtr> agg_calls;
    for (const sql::Expr* call : agg_call_ptrs) {
      agg_calls.push_back(sql::CloneExpr(*call));
    }

    std::vector<exec::AggSpec> specs;
    for (size_t k = 0; k < agg_calls.size(); ++k) {
      const sql::Expr& call = *agg_calls[k];
      exec::AggFunc func;
      exec::LookupAggFunc(call.func_name, &func);
      exec::AggSpec spec;
      if (call.args.size() == 1 &&
          call.args[0]->kind == sql::ExprKind::kStar) {
        spec.func = exec::AggFunc::kCountStar;
        spec.arg = nullptr;
      } else if (call.args.size() == 1) {
        spec.func = func;
        BORNSQL_ASSIGN_OR_RETURN(spec.arg,
                                 BindExpr(*call.args[0], in_schema));
      } else {
        return Status::BindError("aggregate " + call.func_name +
                                 "() takes exactly one argument");
      }
      agg_schema.Add(Column{"", StrFormat("#a%zu", k), ValueType::kNull});
      specs.push_back(std::move(spec));
    }

    input = std::make_unique<exec::HashAggOp>(
        std::move(input), std::move(bound_groups), std::move(specs),
        agg_schema);

    // Rewrite select items and HAVING against the aggregate output.
    std::vector<
        std::pair<const sql::Expr*, std::pair<std::string, std::string>>>
        replacements;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      const Column& col = agg_schema.column(i);
      replacements.emplace_back(group_exprs[i].get(),
                                std::make_pair(col.qualifier, col.name));
    }
    for (size_t k = 0; k < agg_calls.size(); ++k) {
      const Column& col = agg_schema.column(group_exprs.size() + k);
      replacements.emplace_back(agg_calls[k].get(),
                                std::make_pair(col.qualifier, col.name));
    }
    for (ExpandedItem& item : items) {
      item.expr = RewriteWithReplacements(*item.expr, replacements);
    }
    for (sql::ExprPtr& o : order_exprs) {
      o = RewriteWithReplacements(*o, replacements);
    }
    if (having != nullptr) {
      having = RewriteWithReplacements(*having, replacements);
      BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr pred,
                               BindExpr(*having, input->schema()));
      input = std::make_unique<exec::FilterOp>(std::move(input),
                                               std::move(pred));
    }
  } else if (having != nullptr) {
    return Status::BindError("HAVING without aggregation is not supported");
  }

  // ---- window functions ----
  std::vector<const sql::Expr*> window_call_ptrs;
  for (const ExpandedItem& item : items) {
    CollectWindowCalls(*item.expr, &window_call_ptrs);
  }
  for (const sql::ExprPtr& o : order_exprs) {
    CollectWindowCalls(*o, &window_call_ptrs);
  }
  std::vector<sql::ExprPtr> window_calls;
  for (const sql::Expr* call : window_call_ptrs) {
    window_calls.push_back(sql::CloneExpr(*call));
  }
  if (!window_calls.empty()) {
    const Schema& in_schema = input->schema();
    std::vector<exec::WindowSpec> specs;
    std::vector<
        std::pair<const sql::Expr*, std::pair<std::string, std::string>>>
        replacements;
    for (size_t i = 0; i < window_calls.size(); ++i) {
      const sql::Expr& call = *window_calls[i];
      exec::WindowSpec spec;
      if (EqualsIgnoreCase(call.func_name, "row_number")) {
        spec.func = exec::WindowFunc::kRowNumber;
      } else if (EqualsIgnoreCase(call.func_name, "rank")) {
        spec.func = exec::WindowFunc::kRank;
      } else if (EqualsIgnoreCase(call.func_name, "dense_rank")) {
        spec.func = exec::WindowFunc::kDenseRank;
      } else {
        return Status::Unsupported(
            "window function " + call.func_name +
            "() is not supported (ROW_NUMBER, RANK, DENSE_RANK)");
      }
      if (!call.args.empty()) {
        return Status::BindError(call.func_name + "() takes no arguments");
      }
      if (spec.func != exec::WindowFunc::kRowNumber &&
          call.window_order_by.empty()) {
        return Status::BindError(call.func_name +
                                 "() requires an ORDER BY in its window");
      }
      spec.output_name = StrFormat("#w%zu", i);
      for (const sql::ExprPtr& p : call.partition_by) {
        BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(*p, in_schema));
        spec.partition_by.push_back(std::move(b));
      }
      for (const auto& [expr, desc] : call.window_order_by) {
        exec::SortKey key;
        key.desc = desc;
        BORNSQL_ASSIGN_OR_RETURN(key.expr, BindExpr(*expr, in_schema));
        spec.order_by.push_back(std::move(key));
      }
      replacements.emplace_back(&call,
                                std::make_pair("", spec.output_name));
      specs.push_back(std::move(spec));
    }
    input = std::make_unique<exec::WindowOp>(std::move(input),
                                             std::move(specs));
    for (ExpandedItem& item : items) {
      item.expr = RewriteWithReplacements(*item.expr, replacements);
    }
    for (sql::ExprPtr& o : order_exprs) {
      o = RewriteWithReplacements(*o, replacements);
    }
  }

  // ---- projection (with hidden ORDER BY columns where needed) ----
  std::vector<BoundExprPtr> exprs;
  Schema out_schema;
  for (ExpandedItem& item : items) {
    BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr b,
                             BindExpr(*item.expr, input->schema()));
    exprs.push_back(std::move(b));
    out_schema.Add(Column{"", item.name, ValueType::kNull});
  }
  const size_t visible_columns = items.size();

  // Resolve each ORDER BY key to a post-projection column: an ordinal, an
  // output name/alias, or a hidden column computed from the input schema.
  std::vector<exec::SortKey> sort_keys;
  size_t hidden = 0;
  for (size_t i = 0; i < order_exprs.size(); ++i) {
    const sql::Expr& oe = *order_exprs[i];
    exec::SortKey key;
    key.desc = (*order_by)[i].desc;
    if (oe.kind == sql::ExprKind::kLiteral && oe.literal.is_int()) {
      int64_t ordinal = oe.literal.AsInt();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(visible_columns)) {
        return Status::BindError(
            StrFormat("ORDER BY position %lld is out of range",
                      static_cast<long long>(ordinal)));
      }
      key.expr = exec::BoundColumn(static_cast<size_t>(ordinal - 1));
    } else if (auto bound = BindExpr(oe, out_schema); bound.ok()) {
      key.expr = std::move(bound).value();
    } else {
      // Hidden column over the pre-projection schema.
      BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr b, BindExpr(oe, input->schema()));
      if (core.distinct) {
        return Status::BindError(
            "for SELECT DISTINCT, ORDER BY expressions must appear in the "
            "select list");
      }
      exprs.push_back(std::move(b));
      out_schema.Add(Column{"", StrFormat("#s%zu", hidden++), ValueType::kNull});
      key.expr = exec::BoundColumn(out_schema.size() - 1);
    }
    sort_keys.push_back(std::move(key));
  }

  OperatorPtr op = std::make_unique<exec::ProjectOp>(
      std::move(input), std::move(exprs), out_schema);

  if (core.distinct) {
    op = std::make_unique<exec::DistinctOp>(std::move(op));
  }
  if (!sort_keys.empty()) {
    op = std::make_unique<exec::SortOp>(std::move(op), std::move(sort_keys));
  }
  if (hidden > 0) {
    // Strip the hidden sort columns.
    std::vector<BoundExprPtr> strip;
    Schema strip_schema;
    for (size_t i = 0; i < visible_columns; ++i) {
      strip.push_back(exec::BoundColumn(i));
      strip_schema.Add(out_schema.column(i));
    }
    op = std::make_unique<exec::ProjectOp>(std::move(op), std::move(strip),
                                           std::move(strip_schema));
  }
  return op;
}

}  // namespace bornsql::engine
