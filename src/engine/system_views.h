// born_stat_* system views: SQL-queryable introspection.
//
// The engine's observability state (statement stats, operator aggregates,
// table usage counters, the slow-query log) is exposed as virtual tables
// that resolve in the planner like ordinary relations, so they compose with
// joins, filters and aggregation:
//
//   SELECT query, calls, total_ms FROM born_stat_statements
//   ORDER BY total_ms DESC LIMIT 10;
//
// Views materialize at scan Open() time, so every execution sees a fresh
// snapshot. Real catalog tables shadow view names (checked by the planner),
// so a user table named born_stat_statements keeps working.
#ifndef BORNSQL_ENGINE_SYSTEM_VIEWS_H_
#define BORNSQL_ENGINE_SYSTEM_VIEWS_H_

#include <string>
#include <vector>

#include "engine/planner.h"
#include "types/schema.h"

namespace bornsql::engine {

class Database;

class SystemViews : public SystemCatalog {
 public:
  explicit SystemViews(const Database* db) : db_(db) {}

  // All view names, sorted (for .tables-style listings and tests).
  static const std::vector<std::string>& ViewNames();

  // Unqualified schema of view `name`, or null if not a system view.
  static const Schema* ViewSchema(const std::string& name);

  bool IsSystemView(const std::string& name) const override;
  exec::OperatorPtr MakeViewScan(const std::string& name,
                                 const std::string& qualifier) const override;

 private:
  const Database* db_;
};

}  // namespace bornsql::engine

#endif  // BORNSQL_ENGINE_SYSTEM_VIEWS_H_
