// Abstract syntax tree for the BornSQL dialect.
//
// Expressions use a single tagged struct rather than a class hierarchy: the
// dialect is small and the binder (engine/binder.cc) immediately lowers the
// AST into a bound, index-resolved form, so virtual dispatch would buy
// nothing here.
#ifndef BORNSQL_SQL_AST_H_
#define BORNSQL_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "types/value.h"

namespace bornsql::sql {

struct Expr;
struct SelectStmt;
using ExprPtr = std::unique_ptr<Expr>;

// Source position of an AST node, carried from the token that started it.
// Programmatically built nodes (tests, query builders, planner rewrites)
// leave it invalid; diagnostics then omit the span.
struct SourceLoc {
  size_t offset = 0;
  size_t line = 0;  // 1-based; 0 => unknown
  size_t column = 0;
  bool valid() const { return line > 0; }
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,  // scalar or aggregate; classified at bind time
  kWindow,        // <func>(...) OVER (PARTITION BY ... ORDER BY ...)
  kStar,          // bare * inside COUNT(*)
  kCase,          // CASE WHEN ... THEN ... [ELSE ...] END
  kIsNull,        // expr IS [NOT] NULL
  kInList,        // expr [NOT] IN (e1, e2, ...)
  kScalarSubquery,  // (SELECT ...) producing one value
  kInSubquery,      // expr [NOT] IN (SELECT ...)
  kExists,          // [NOT] EXISTS (SELECT ...)
  kInSet,           // planner-internal: expr [NOT] IN <materialized values>
  kParameter,       // ? or $n placeholder; only valid inside PREPAREd text
};

enum class UnaryOp { kNegate, kNot, kPlus };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAnd, kOr,
  kConcat,
  kLike,
};

struct OrderItem;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  SourceLoc loc;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // optional table/alias
  std::string column;

  // kUnary (uses left), kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr left;
  ExprPtr right;

  // kFunctionCall / kWindow
  std::string func_name;  // original spelling; matched case-insensitively
  std::vector<ExprPtr> args;
  // kWindow only:
  std::vector<ExprPtr> partition_by;
  std::vector<std::pair<ExprPtr, bool>> window_order_by;  // (expr, desc)

  // kCase
  std::vector<std::pair<ExprPtr, ExprPtr>> when_clauses;
  ExprPtr else_clause;

  // kIsNull / kInList / kInSubquery / kExists / kInSet
  bool negated = false;

  // kScalarSubquery / kInSubquery / kExists. Uncorrelated only: the
  // planner evaluates the subquery once and folds the result into the
  // expression (kInSubquery becomes kInSet).
  std::unique_ptr<SelectStmt> subquery;

  // kInSet: values materialized from an IN subquery.
  std::vector<Value> set_values;

  // kParameter: 1-based ordinal. `$n` carries n from the lexer; bare `?`
  // placeholders arrive as 0 and are assigned ordinals in source order by
  // engine::AssignParameterOrdinals before binding.
  size_t param_index = 0;
};

// Convenience constructors (used by tests and programmatic query builders).
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
ExprPtr CloneExpr(const Expr& e);

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectItem {
  // Either a star projection (optionally qualified: t.*) or an expression
  // with an optional alias.
  bool is_star = false;
  std::string star_qualifier;
  ExprPtr expr;
  std::string alias;
};

struct SelectStmt;

struct TableRef {
  SourceLoc loc;
  // Exactly one of table_name / subquery is set.
  std::string table_name;
  std::unique_ptr<SelectStmt> subquery;
  std::string alias;  // empty => table_name is the exposed qualifier

  // How this ref connects to the refs before it in the FROM clause.
  // kComma behaves as CROSS JOIN with predicates supplied via WHERE.
  enum class JoinKind { kFirst, kComma, kInner, kLeft, kCross };
  JoinKind join_kind = JoinKind::kFirst;
  ExprPtr join_condition;  // for kInner / kLeft (the ON clause)
};

// One SELECT core (everything except WITH / ORDER BY / LIMIT / UNION).
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // empty => SELECT of constants
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
};

struct CommonTableExpr {
  SourceLoc loc;
  std::string name;
  std::unique_ptr<SelectStmt> select;
};

struct SelectStmt {
  std::vector<CommonTableExpr> ctes;
  std::vector<SelectCore> cores;  // >1 => UNION ALL chain, in order
  std::vector<OrderItem> order_by;
  ExprPtr limit;
  ExprPtr offset;
};

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s);
SelectCore CloneCore(const SelectCore& core);

struct Statement;
// Deep copy of a DML/query statement (kSelect/kInsert/kUpdate/kDelete only;
// other kinds are not prepared and return nullptr). Used by the serving
// layer to keep an owned parameterized AST alive alongside a cached plan.
std::unique_ptr<Statement> CloneStatement(const Statement& s);

// ---- Statements ----------------------------------------------------------

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;  // kNull => dynamic
  bool primary_key = false;           // inline "PRIMARY KEY"
};

struct CreateTableStmt {
  std::string table;
  bool if_not_exists = false;
  bool temp = false;
  std::vector<ColumnDef> columns;          // empty when created AS SELECT
  std::vector<std::string> primary_key;    // table-level PRIMARY KEY(...)
  std::unique_ptr<SelectStmt> as_select;   // CREATE TABLE ... AS SELECT
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  bool unique = false;
  std::vector<std::string> columns;
};

struct OnConflictClause {
  std::vector<std::string> target_columns;  // must match a unique constraint
  bool do_nothing = false;
  // DO UPDATE SET col = expr. Expressions may reference `excluded.<col>`
  // (the incoming row) and the target table's columns (the existing row).
  std::vector<std::pair<std::string, ExprPtr>> set_clauses;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;          // empty => table order
  std::vector<std::vector<ExprPtr>> values;  // literal rows, or
  std::unique_ptr<SelectStmt> select;        // INSERT ... SELECT
  std::unique_ptr<OnConflictClause> on_conflict;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> set_clauses;
  ExprPtr where;
  SourceLoc loc;  // position of the UPDATE keyword
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
  SourceLoc loc;  // position of the DELETE keyword
};

// SET <name> = <expr>: a dotted setting name (e.g. born.slow_query_ms) and
// a constant value expression, evaluated at execution time.
struct SetStmt {
  std::string name;  // dot-joined, lower-cased by the parser
  ExprPtr value;
};

struct Statement;

// PREPARE <name> AS <stmt>: names a parameterized statement for later
// EXECUTE. The body may contain kParameter placeholders; only SELECT /
// INSERT / UPDATE / DELETE bodies are accepted (the parser enforces this).
struct PrepareStmt {
  SourceLoc loc;
  std::string name;
  std::unique_ptr<Statement> body;
  SourceLoc body_loc;    // first token of the body, for slicing source text
  std::string body_sql;  // original body text, filled by the serving layer
};

// EXECUTE <name>(arg, ...): runs a prepared statement with constant
// arguments bound to its placeholders in ordinal order.
struct ExecuteStmt {
  SourceLoc loc;
  std::string name;
  std::vector<ExprPtr> args;  // constant expressions, evaluated at execute
};

// DEALLOCATE <name> | DEALLOCATE ALL.
struct DeallocateStmt {
  SourceLoc loc;
  std::string name;  // empty => ALL
};

enum class StatementKind {
  kSelect,
  kExplain,  // EXPLAIN [ANALYZE|VERIFY|LINT|LOGICAL] <stmt>: `explained` + flags
  kCreateTable,
  kDropTable,
  kCreateIndex,
  kInsert,
  kUpdate,
  kDelete,
  kSet,
  kPrepare,
  kExecute,
  kDeallocate,
};

struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<PrepareStmt> prepare;
  std::unique_ptr<ExecuteStmt> execute;
  std::unique_ptr<DeallocateStmt> deallocate;

  // kExplain: the wrapped statement (any kind except kExplain itself) and
  // which mode was requested: ANALYZE (execute + per-operator stats),
  // VERIFY (plan-invariant check, src/lint/plan_verifier.h) or LINT
  // (static SQL diagnostics, src/lint/linter.h). At most one is set.
  std::unique_ptr<Statement> explained;
  bool explain_analyze = false;
  bool explain_verify = false;
  bool explain_lint = false;
  bool explain_logical = false;
};

}  // namespace bornsql::sql

#endif  // BORNSQL_SQL_AST_H_
