#include "sql/parser.h"

#include <cassert>

#include "common/strings.h"
#include "sql/lexer.h"

namespace bornsql::sql {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> Script() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (Match(TokenType::kSemicolon)) continue;
      BORNSQL_ASSIGN_OR_RETURN(Statement stmt, StatementRule());
      out.push_back(std::move(stmt));
      if (!AtEnd()) {
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kSemicolon));
      }
    }
    return out;
  }

  Result<Statement> Single() {
    while (Match(TokenType::kSemicolon)) {}
    BORNSQL_ASSIGN_OR_RETURN(Statement stmt, StatementRule());
    while (Match(TokenType::kSemicolon)) {}
    if (!AtEnd()) return Error("unexpected trailing input");
    return stmt;
  }

  Result<ExprPtr> SingleExpression() {
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr e, Expression());
    if (!AtEnd()) return Error("unexpected trailing input");
    return e;
  }

 private:
  // ---- token plumbing ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  bool AtEnd() const { return Peek().type == TokenType::kEof; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenType t) const { return Peek().type == t; }
  bool CheckKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kKeyword && EqualsIgnoreCase(t.text, kw);
  }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType t) {
    if (Match(t)) return Status::OK();
    return Error(StrFormat("expected %s, found %s", TokenTypeName(t),
                           Describe(Peek()).c_str()));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(StrFormat("expected %.*s, found %s",
                           static_cast<int>(kw.size()), kw.data(),
                           Describe(Peek()).c_str()));
  }
  static std::string Describe(const Token& t) {
    if (t.type == TokenType::kKeyword || t.type == TokenType::kIdentifier) {
      return "'" + t.text + "'";
    }
    return TokenTypeName(t.type);
  }
  Status Error(std::string msg) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat("%s (at line %zu:%zu)", msg.c_str(),
                                        t.line, t.column));
  }

  // Source location of the next token, for stamping AST nodes.
  SourceLoc Loc() const {
    const Token& t = Peek();
    return SourceLoc{t.offset, t.line, t.column};
  }

  // VERIFY/LINT/LOGICAL are deliberately not keywords (they stay usable as
  // table or column names); EXPLAIN matches them as bare identifiers instead.
  bool CheckIdent(std::string_view word, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, word);
  }
  bool MatchIdent(std::string_view word) {
    if (!CheckIdent(word)) return false;
    Advance();
    return true;
  }

  Result<std::string> Identifier(const char* what) {
    if (Check(TokenType::kIdentifier)) return Advance().text;
    return Error(StrFormat("expected %s, found %s", what,
                           Describe(Peek()).c_str()));
  }

  // ---- statements ----
  Result<Statement> StatementRule() {
    if (CheckKeyword("SELECT") || CheckKeyword("WITH")) {
      BORNSQL_ASSIGN_OR_RETURN(auto sel, SelectStatement());
      Statement st;
      st.kind = StatementKind::kSelect;
      st.select = std::move(sel);
      return st;
    }
    if (MatchKeyword("EXPLAIN")) {
      Statement st;
      st.kind = StatementKind::kExplain;
      if (MatchKeyword("ANALYZE")) {
        st.explain_analyze = true;
      } else if (MatchIdent("VERIFY")) {
        st.explain_verify = true;
      } else if (MatchIdent("LINT")) {
        st.explain_lint = true;
      } else if (MatchIdent("LOGICAL")) {
        st.explain_logical = true;
      }
      if (CheckKeyword("EXPLAIN")) return Error("cannot EXPLAIN an EXPLAIN");
      BORNSQL_ASSIGN_OR_RETURN(Statement inner, StatementRule());
      st.explained = std::make_unique<Statement>(std::move(inner));
      return st;
    }
    if (CheckKeyword("CREATE")) return CreateStatement();
    if (CheckKeyword("DROP")) return DropStatement();
    if (CheckKeyword("INSERT")) return InsertStatement();
    if (CheckKeyword("UPDATE")) return UpdateStatement();
    if (CheckKeyword("DELETE")) return DeleteStatement();
    if (CheckKeyword("SET")) return SetStatement();
    // PREPARE / EXECUTE / DEALLOCATE are contextual (not keywords, so they
    // stay usable as table or column names); no other statement starts with
    // a bare identifier, so the word position disambiguates.
    if (CheckIdent("PREPARE")) return PrepareStatement();
    if (CheckIdent("EXECUTE")) return ExecuteStatement();
    if (CheckIdent("DEALLOCATE")) return DeallocateStatement();
    return Error("expected a statement");
  }

  // PREPARE <name> AS <select|insert|update|delete>
  Result<Statement> PrepareStatement() {
    SourceLoc loc = Loc();
    Advance();  // PREPARE
    auto stmt = std::make_unique<PrepareStmt>();
    stmt->loc = loc;
    BORNSQL_ASSIGN_OR_RETURN(stmt->name, Identifier("prepared statement name"));
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
    stmt->body_loc = Loc();
    BORNSQL_ASSIGN_OR_RETURN(Statement body, StatementRule());
    switch (body.kind) {
      case StatementKind::kSelect:
      case StatementKind::kInsert:
      case StatementKind::kUpdate:
      case StatementKind::kDelete:
        break;
      default:
        return Error(
            "PREPARE body must be SELECT, INSERT, UPDATE or DELETE");
    }
    stmt->body = std::make_unique<Statement>(std::move(body));
    Statement st;
    st.kind = StatementKind::kPrepare;
    st.prepare = std::move(stmt);
    return st;
  }

  // EXECUTE <name> [ ( expr, ... ) ]
  Result<Statement> ExecuteStatement() {
    SourceLoc loc = Loc();
    Advance();  // EXECUTE
    auto stmt = std::make_unique<ExecuteStmt>();
    stmt->loc = loc;
    BORNSQL_ASSIGN_OR_RETURN(stmt->name, Identifier("prepared statement name"));
    if (Match(TokenType::kLParen)) {
      if (!Match(TokenType::kRParen)) {
        do {
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr arg, Expression());
          stmt->args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      }
    }
    Statement st;
    st.kind = StatementKind::kExecute;
    st.execute = std::move(stmt);
    return st;
  }

  // DEALLOCATE <name> | DEALLOCATE ALL
  Result<Statement> DeallocateStatement() {
    SourceLoc loc = Loc();
    Advance();  // DEALLOCATE
    auto stmt = std::make_unique<DeallocateStmt>();
    stmt->loc = loc;
    if (MatchKeyword("ALL")) {
      stmt->name.clear();
    } else {
      BORNSQL_ASSIGN_OR_RETURN(stmt->name,
                               Identifier("prepared statement name"));
    }
    Statement st;
    st.kind = StatementKind::kDeallocate;
    st.deallocate = std::move(stmt);
    return st;
  }

  // SET <name>[.<name>...] = <expr>
  Result<Statement> SetStatement() {
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
    auto stmt = std::make_unique<SetStmt>();
    BORNSQL_ASSIGN_OR_RETURN(std::string part, Identifier("setting name"));
    stmt->name = AsciiToLower(part);
    while (Match(TokenType::kDot)) {
      BORNSQL_ASSIGN_OR_RETURN(part, Identifier("setting name"));
      stmt->name += '.';
      stmt->name += AsciiToLower(part);
    }
    BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kEq));
    BORNSQL_ASSIGN_OR_RETURN(stmt->value, Expression());
    Statement st;
    st.kind = StatementKind::kSet;
    st.set = std::move(stmt);
    return st;
  }

  Result<Statement> CreateStatement() {
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    bool temp = MatchKeyword("TEMP") || MatchKeyword("TEMPORARY");
    bool unique = MatchKeyword("UNIQUE");
    if (MatchKeyword("INDEX")) {
      if (temp) return Error("TEMP INDEX is not supported");
      auto stmt = std::make_unique<CreateIndexStmt>();
      stmt->unique = unique;
      BORNSQL_ASSIGN_OR_RETURN(stmt->name, Identifier("index name"));
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      do {
        BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (Match(TokenType::kComma));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      Statement st;
      st.kind = StatementKind::kCreateIndex;
      st.create_index = std::move(stmt);
      return st;
    }
    if (unique) return Error("expected INDEX after UNIQUE");
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    stmt->temp = temp;
    if (MatchKeyword("IF")) {
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_not_exists = true;
    }
    BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
    if (MatchKeyword("AS")) {
      BORNSQL_ASSIGN_OR_RETURN(stmt->as_select, SelectStatement());
    } else {
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      do {
        if (CheckKeyword("PRIMARY")) {
          Advance();
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
          do {
            BORNSQL_ASSIGN_OR_RETURN(std::string col,
                                     Identifier("column name"));
            stmt->primary_key.push_back(std::move(col));
          } while (Match(TokenType::kComma));
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          continue;
        }
        ColumnDef def;
        BORNSQL_ASSIGN_OR_RETURN(def.name, Identifier("column name"));
        // Optional type.
        if (Check(TokenType::kIdentifier)) {
          const std::string& ty = Peek().text;
          if (EqualsIgnoreCase(ty, "INTEGER") || EqualsIgnoreCase(ty, "INT") ||
              EqualsIgnoreCase(ty, "BIGINT")) {
            def.type = ValueType::kInt;
            Advance();
          } else if (EqualsIgnoreCase(ty, "REAL") ||
                     EqualsIgnoreCase(ty, "DOUBLE") ||
                     EqualsIgnoreCase(ty, "FLOAT") ||
                     EqualsIgnoreCase(ty, "NUMERIC")) {
            def.type = ValueType::kDouble;
            Advance();
            if (EqualsIgnoreCase(ty, "DOUBLE") &&
                Check(TokenType::kIdentifier) &&
                EqualsIgnoreCase(Peek().text, "PRECISION")) {
              Advance();
            }
          } else if (EqualsIgnoreCase(ty, "TEXT") ||
                     EqualsIgnoreCase(ty, "VARCHAR") ||
                     EqualsIgnoreCase(ty, "CHAR") ||
                     EqualsIgnoreCase(ty, "CLOB")) {
            def.type = ValueType::kText;
            Advance();
            if (Match(TokenType::kLParen)) {  // VARCHAR(n): length ignored
              BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kIntLiteral));
              BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
            }
          }
        }
        if (MatchKeyword("PRIMARY")) {
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          def.primary_key = true;
        }
        if (MatchKeyword("NOT")) {  // NOT NULL accepted, not enforced
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        }
        stmt->columns.push_back(std::move(def));
      } while (Match(TokenType::kComma));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    Statement st;
    st.kind = StatementKind::kCreateTable;
    st.create_table = std::move(stmt);
    return st;
  }

  Result<Statement> DropStatement() {
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<DropTableStmt>();
    if (MatchKeyword("IF")) {
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
    Statement st;
    st.kind = StatementKind::kDropTable;
    st.drop_table = std::move(stmt);
    return st;
  }

  Result<Statement> InsertStatement() {
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
    if (Match(TokenType::kLParen)) {
      do {
        BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (Match(TokenType::kComma));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    if (MatchKeyword("VALUES")) {
      do {
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        std::vector<ExprPtr> row;
        do {
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr e, Expression());
          row.push_back(std::move(e));
        } while (Match(TokenType::kComma));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        stmt->values.push_back(std::move(row));
      } while (Match(TokenType::kComma));
    } else if (CheckKeyword("SELECT") || CheckKeyword("WITH")) {
      BORNSQL_ASSIGN_OR_RETURN(stmt->select, SelectStatement());
    } else {
      return Error("expected VALUES or SELECT in INSERT");
    }
    if (MatchKeyword("ON")) {
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("CONFLICT"));
      auto conflict = std::make_unique<OnConflictClause>();
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      do {
        BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
        conflict->target_columns.push_back(std::move(col));
      } while (Match(TokenType::kComma));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("DO"));
      if (MatchKeyword("NOTHING")) {
        conflict->do_nothing = true;
      } else {
        BORNSQL_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
        BORNSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
        do {
          BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kEq));
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr e, Expression());
          conflict->set_clauses.emplace_back(std::move(col), std::move(e));
        } while (Match(TokenType::kComma));
      }
      stmt->on_conflict = std::move(conflict);
    }
    Statement st;
    st.kind = StatementKind::kInsert;
    st.insert = std::move(stmt);
    return st;
  }

  Result<Statement> UpdateStatement() {
    SourceLoc loc = Loc();
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    stmt->loc = loc;
    BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kEq));
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr e, Expression());
      stmt->set_clauses.emplace_back(std::move(col), std::move(e));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("WHERE")) {
      BORNSQL_ASSIGN_OR_RETURN(stmt->where, Expression());
    }
    Statement st;
    st.kind = StatementKind::kUpdate;
    st.update = std::move(stmt);
    return st;
  }

  Result<Statement> DeleteStatement() {
    SourceLoc loc = Loc();
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    stmt->loc = loc;
    BORNSQL_ASSIGN_OR_RETURN(stmt->table, Identifier("table name"));
    if (MatchKeyword("WHERE")) {
      BORNSQL_ASSIGN_OR_RETURN(stmt->where, Expression());
    }
    Statement st;
    st.kind = StatementKind::kDelete;
    st.del = std::move(stmt);
    return st;
  }

  // ---- SELECT ----
  Result<std::unique_ptr<SelectStmt>> SelectStatement() {
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchKeyword("WITH")) {
      do {
        CommonTableExpr cte;
        cte.loc = Loc();
        BORNSQL_ASSIGN_OR_RETURN(cte.name, Identifier("CTE name"));
        BORNSQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        BORNSQL_ASSIGN_OR_RETURN(cte.select, SelectStatement());
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        stmt->ctes.push_back(std::move(cte));
      } while (Match(TokenType::kComma));
    }
    BORNSQL_ASSIGN_OR_RETURN(SelectCore core, SelectCoreRule());
    stmt->cores.push_back(std::move(core));
    while (CheckKeyword("UNION")) {
      Advance();
      if (!MatchKeyword("ALL")) {
        return Error("only UNION ALL is supported (UNION DISTINCT is not)");
      }
      BORNSQL_ASSIGN_OR_RETURN(SelectCore next, SelectCoreRule());
      stmt->cores.push_back(std::move(next));
    }
    if (MatchKeyword("ORDER")) {
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        BORNSQL_ASSIGN_OR_RETURN(item.expr, Expression());
        if (MatchKeyword("DESC")) {
          item.desc = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      BORNSQL_ASSIGN_OR_RETURN(stmt->limit, Expression());
      if (MatchKeyword("OFFSET")) {
        BORNSQL_ASSIGN_OR_RETURN(stmt->offset, Expression());
      }
    }
    return stmt;
  }

  Result<SelectCore> SelectCoreRule() {
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectCore core;
    if (MatchKeyword("DISTINCT")) {
      core.distinct = true;
    } else {
      MatchKeyword("ALL");
    }
    do {
      SelectItem item;
      if (Match(TokenType::kStar)) {
        item.is_star = true;
      } else if (Check(TokenType::kIdentifier) &&
                 Peek(1).type == TokenType::kDot &&
                 Peek(2).type == TokenType::kStar) {
        item.is_star = true;
        item.star_qualifier = Advance().text;
        Advance();  // '.'
        Advance();  // '*'
      } else {
        BORNSQL_ASSIGN_OR_RETURN(item.expr, Expression());
        if (MatchKeyword("AS")) {
          BORNSQL_ASSIGN_OR_RETURN(item.alias, Identifier("column alias"));
        } else if (Check(TokenType::kIdentifier)) {
          item.alias = Advance().text;
        }
      }
      core.items.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    if (MatchKeyword("FROM")) {
      BORNSQL_ASSIGN_OR_RETURN(TableRef first, TableRefRule());
      first.join_kind = TableRef::JoinKind::kFirst;
      core.from.push_back(std::move(first));
      while (true) {
        if (Match(TokenType::kComma)) {
          BORNSQL_ASSIGN_OR_RETURN(TableRef ref, TableRefRule());
          ref.join_kind = TableRef::JoinKind::kComma;
          core.from.push_back(std::move(ref));
          continue;
        }
        if (CheckKeyword("CROSS")) {
          Advance();
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          BORNSQL_ASSIGN_OR_RETURN(TableRef ref, TableRefRule());
          ref.join_kind = TableRef::JoinKind::kCross;
          core.from.push_back(std::move(ref));
          continue;
        }
        if (CheckKeyword("INNER") || CheckKeyword("JOIN") ||
            CheckKeyword("LEFT")) {
          TableRef::JoinKind kind = TableRef::JoinKind::kInner;
          if (MatchKeyword("LEFT")) {
            // Accept optional OUTER (not a keyword in this dialect, so it
            // arrives as an identifier).
            if (Check(TokenType::kIdentifier) &&
                EqualsIgnoreCase(Peek().text, "OUTER")) {
              Advance();
            }
            kind = TableRef::JoinKind::kLeft;
          } else {
            MatchKeyword("INNER");
          }
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          BORNSQL_ASSIGN_OR_RETURN(TableRef ref, TableRefRule());
          ref.join_kind = kind;
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
          BORNSQL_ASSIGN_OR_RETURN(ref.join_condition, Expression());
          core.from.push_back(std::move(ref));
          continue;
        }
        break;
      }
    }
    if (MatchKeyword("WHERE")) {
      BORNSQL_ASSIGN_OR_RETURN(core.where, Expression());
    }
    if (MatchKeyword("GROUP")) {
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        BORNSQL_ASSIGN_OR_RETURN(ExprPtr e, Expression());
        core.group_by.push_back(std::move(e));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("HAVING")) {
      BORNSQL_ASSIGN_OR_RETURN(core.having, Expression());
    }
    return core;
  }

  Result<TableRef> TableRefRule() {
    TableRef ref;
    ref.loc = Loc();
    if (Match(TokenType::kLParen)) {
      BORNSQL_ASSIGN_OR_RETURN(ref.subquery, SelectStatement());
      BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      if (MatchKeyword("AS")) {
        BORNSQL_ASSIGN_OR_RETURN(ref.alias, Identifier("table alias"));
      } else if (Check(TokenType::kIdentifier)) {
        ref.alias = Advance().text;
      } else {
        return Error("derived table requires an alias");
      }
      return ref;
    }
    BORNSQL_ASSIGN_OR_RETURN(ref.table_name, Identifier("table name"));
    if (MatchKeyword("AS")) {
      BORNSQL_ASSIGN_OR_RETURN(ref.alias, Identifier("table alias"));
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // ---- expressions (precedence climbing) ----
  // Compound nodes (binary/unary) inherit the location of their first
  // token, so a diagnostic about `a + 1 > b` points at `a`.
  Result<ExprPtr> Expression() { return OrExpr(); }

  Result<ExprPtr> OrExpr() {
    const SourceLoc start = Loc();
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr left, AndExpr());
    while (MatchKeyword("OR")) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr right, AndExpr());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
      left->loc = start;
    }
    return left;
  }

  Result<ExprPtr> AndExpr() {
    const SourceLoc start = Loc();
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr left, NotExpr());
    while (MatchKeyword("AND")) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr right, NotExpr());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
      left->loc = start;
    }
    return left;
  }

  Result<ExprPtr> NotExpr() {
    const SourceLoc start = Loc();
    if (MatchKeyword("NOT")) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr inner, NotExpr());
      ExprPtr e = MakeUnary(UnaryOp::kNot, std::move(inner));
      e->loc = start;
      return e;
    }
    return Comparison();
  }

  Result<ExprPtr> Comparison() {
    const SourceLoc start = Loc();
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr left, Additive());
    while (true) {
      if (MatchKeyword("IS")) {
        bool negated = MatchKeyword("NOT");
        BORNSQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIsNull;
        e->loc = start;
        e->left = std::move(left);
        e->negated = negated;
        left = std::move(e);
        continue;
      }
      bool negated_in = false;
      if (CheckKeyword("NOT") && CheckKeyword("IN", 1)) {
        Advance();
        negated_in = true;
      }
      if (MatchKeyword("IN")) {
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        if (CheckKeyword("SELECT") || CheckKeyword("WITH")) {
          auto sub = std::make_unique<Expr>();
          sub->kind = ExprKind::kInSubquery;
          sub->loc = start;
          sub->left = std::move(left);
          sub->negated = negated_in;
          BORNSQL_ASSIGN_OR_RETURN(sub->subquery, SelectStatement());
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          left = std::move(sub);
          continue;
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kInList;
        e->loc = start;
        e->left = std::move(left);
        e->negated = negated_in;
        do {
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr item, Expression());
          e->args.push_back(std::move(item));
        } while (Match(TokenType::kComma));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        left = std::move(e);
        continue;
      }
      bool negated_between = false;
      if (CheckKeyword("NOT") && CheckKeyword("BETWEEN", 1)) {
        Advance();
        negated_between = true;
      }
      if (MatchKeyword("BETWEEN")) {
        BORNSQL_ASSIGN_OR_RETURN(ExprPtr lo, Additive());
        BORNSQL_RETURN_IF_ERROR(ExpectKeyword("AND"));
        BORNSQL_ASSIGN_OR_RETURN(ExprPtr hi, Additive());
        // Desugar: (left >= lo AND left <= hi), negated if requested.
        ExprPtr copy = CloneExpr(*left);
        ExprPtr both = MakeBinary(
            BinaryOp::kAnd,
            MakeBinary(BinaryOp::kGtEq, std::move(left), std::move(lo)),
            MakeBinary(BinaryOp::kLtEq, std::move(copy), std::move(hi)));
        left = negated_between ? MakeUnary(UnaryOp::kNot, std::move(both))
                               : std::move(both);
        left->loc = start;
        continue;
      }
      bool negated_like = false;
      if (CheckKeyword("NOT") && CheckKeyword("LIKE", 1)) {
        Advance();
        negated_like = true;
      }
      if (MatchKeyword("LIKE")) {
        BORNSQL_ASSIGN_OR_RETURN(ExprPtr pattern, Additive());
        ExprPtr like =
            MakeBinary(BinaryOp::kLike, std::move(left), std::move(pattern));
        left = negated_like ? MakeUnary(UnaryOp::kNot, std::move(like))
                            : std::move(like);
        left->loc = start;
        continue;
      }
      BinaryOp op;
      if (Match(TokenType::kEq)) {
        op = BinaryOp::kEq;
      } else if (Match(TokenType::kNotEq)) {
        op = BinaryOp::kNotEq;
      } else if (Match(TokenType::kLtEq)) {
        op = BinaryOp::kLtEq;
      } else if (Match(TokenType::kLt)) {
        op = BinaryOp::kLt;
      } else if (Match(TokenType::kGtEq)) {
        op = BinaryOp::kGtEq;
      } else if (Match(TokenType::kGt)) {
        op = BinaryOp::kGt;
      } else {
        break;
      }
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr right, Additive());
      left = MakeBinary(op, std::move(left), std::move(right));
      left->loc = start;
    }
    return left;
  }

  Result<ExprPtr> Additive() {
    const SourceLoc start = Loc();
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr left, Multiplicative());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else if (Match(TokenType::kConcat)) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr right, Multiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
      left->loc = start;
    }
    return left;
  }

  Result<ExprPtr> Multiplicative() {
    const SourceLoc start = Loc();
    BORNSQL_ASSIGN_OR_RETURN(ExprPtr left, Unary());
    while (true) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr right, Unary());
      left = MakeBinary(op, std::move(left), std::move(right));
      left->loc = start;
    }
    return left;
  }

  Result<ExprPtr> Unary() {
    const SourceLoc start = Loc();
    if (Match(TokenType::kMinus)) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr inner, Unary());
      ExprPtr e = MakeUnary(UnaryOp::kNegate, std::move(inner));
      e->loc = start;
      return e;
    }
    if (Match(TokenType::kPlus)) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr inner, Unary());
      ExprPtr e = MakeUnary(UnaryOp::kPlus, std::move(inner));
      e->loc = start;
      return e;
    }
    return Primary();
  }

  Result<ExprPtr> Primary() {
    const Token& t = Peek();
    const SourceLoc at{t.offset, t.line, t.column};
    auto with_loc = [&at](ExprPtr e) {
      e->loc = at;
      return e;
    };
    switch (t.type) {
      case TokenType::kIntLiteral:
        Advance();
        return with_loc(MakeLiteral(Value::Int(t.int_value)));
      case TokenType::kDoubleLiteral:
        Advance();
        return with_loc(MakeLiteral(Value::Double(t.double_value)));
      case TokenType::kStringLiteral:
        Advance();
        return with_loc(MakeLiteral(Value::Text(t.text)));
      case TokenType::kParameter: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kParameter;
        e->param_index = static_cast<size_t>(t.int_value);  // 0 for bare '?'
        return with_loc(std::move(e));
      }
      case TokenType::kLParen: {
        Advance();
        if (CheckKeyword("SELECT") || CheckKeyword("WITH")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kScalarSubquery;
          e->loc = at;
          BORNSQL_ASSIGN_OR_RETURN(e->subquery, SelectStatement());
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          ExprPtr out = std::move(e);
          return out;
        }
        BORNSQL_ASSIGN_OR_RETURN(ExprPtr inner, Expression());
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        return inner;
      }
      case TokenType::kKeyword:
        if (MatchKeyword("NULL")) return with_loc(MakeLiteral(Value::Null()));
        if (MatchKeyword("EXISTS")) {
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kExists;
          e->loc = at;
          BORNSQL_ASSIGN_OR_RETURN(e->subquery, SelectStatement());
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          ExprPtr out = std::move(e);
          return out;
        }
        if (CheckKeyword("CASE")) return CaseExpr();
        if (MatchKeyword("CAST")) {
          // CAST(expr AS type) — lowered to the cast() scalar function.
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr inner, Expression());
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
          BORNSQL_ASSIGN_OR_RETURN(std::string type_name,
                                   Identifier("type name"));
          BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
          std::vector<ExprPtr> args;
          args.push_back(std::move(inner));
          args.push_back(MakeLiteral(Value::Text(AsciiToLower(type_name))));
          return with_loc(MakeCall("cast", std::move(args)));
        }
        return Error(StrFormat("unexpected keyword '%s' in expression",
                               t.text.c_str()));
      case TokenType::kIdentifier:
        return IdentifierExpr();
      default:
        return Error(StrFormat("unexpected %s in expression",
                               Describe(t).c_str()));
    }
  }

  Result<ExprPtr> CaseExpr() {
    const SourceLoc start = Loc();
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    e->loc = start;
    // Optional operand form: CASE x WHEN v THEN r ... desugars each WHEN to
    // (x = v).
    ExprPtr operand;
    if (!CheckKeyword("WHEN")) {
      BORNSQL_ASSIGN_OR_RETURN(operand, Expression());
    }
    while (MatchKeyword("WHEN")) {
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr when, Expression());
      if (operand) {
        when = MakeBinary(BinaryOp::kEq, CloneExpr(*operand), std::move(when));
      }
      BORNSQL_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      BORNSQL_ASSIGN_OR_RETURN(ExprPtr then, Expression());
      e->when_clauses.emplace_back(std::move(when), std::move(then));
    }
    if (e->when_clauses.empty()) {
      return Error("CASE requires at least one WHEN clause");
    }
    if (MatchKeyword("ELSE")) {
      BORNSQL_ASSIGN_OR_RETURN(e->else_clause, Expression());
    }
    BORNSQL_RETURN_IF_ERROR(ExpectKeyword("END"));
    ExprPtr out = std::move(e);
    return out;
  }

  Result<ExprPtr> IdentifierExpr() {
    const SourceLoc start = Loc();
    std::string first = Advance().text;
    // Function call?
    if (Check(TokenType::kLParen)) {
      Advance();
      auto call = std::make_unique<Expr>();
      call->kind = ExprKind::kFunctionCall;
      call->loc = start;
      call->func_name = first;
      if (Match(TokenType::kStar)) {  // COUNT(*)
        auto star = std::make_unique<Expr>();
        star->kind = ExprKind::kStar;
        call->args.push_back(std::move(star));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      } else if (!Match(TokenType::kRParen)) {
        do {
          BORNSQL_ASSIGN_OR_RETURN(ExprPtr arg, Expression());
          call->args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      }
      if (MatchKeyword("OVER")) {
        call->kind = ExprKind::kWindow;
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        if (MatchKeyword("PARTITION")) {
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
          do {
            BORNSQL_ASSIGN_OR_RETURN(ExprPtr p, Expression());
            call->partition_by.push_back(std::move(p));
          } while (Match(TokenType::kComma));
        }
        if (MatchKeyword("ORDER")) {
          BORNSQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
          do {
            BORNSQL_ASSIGN_OR_RETURN(ExprPtr o, Expression());
            bool desc = false;
            if (MatchKeyword("DESC")) {
              desc = true;
            } else {
              MatchKeyword("ASC");
            }
            call->window_order_by.emplace_back(std::move(o), desc);
          } while (Match(TokenType::kComma));
        }
        BORNSQL_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      }
      ExprPtr out = std::move(call);
      return out;
    }
    // Qualified column?
    if (Match(TokenType::kDot)) {
      BORNSQL_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
      ExprPtr e = MakeColumnRef(std::move(first), std::move(col));
      e->loc = start;
      return e;
    }
    ExprPtr e = MakeColumnRef("", std::move(first));
    e->loc = start;
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  BORNSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser p(std::move(tokens));
  return p.Single();
}

Result<Statement> ParseStatementTokens(std::vector<Token> tokens) {
  Parser p(std::move(tokens));
  return p.Single();
}

Result<std::vector<Statement>> ParseScript(std::string_view sql) {
  BORNSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser p(std::move(tokens));
  return p.Script();
}

Result<ExprPtr> ParseExpression(std::string_view sql) {
  BORNSQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser p(std::move(tokens));
  return p.SingleExpression();
}

}  // namespace bornsql::sql
