// Hand-written SQL lexer.
//
// Supports: identifiers ("quoted" or bare), keywords (case-insensitive),
// integer/double literals, 'string' literals with '' escaping, line comments
// (--) and block comments (/* */), and the operator set in token.h.
#ifndef BORNSQL_SQL_LEXER_H_
#define BORNSQL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace bornsql::sql {

// Tokenizes `source` fully; the final token is kEof.
Result<std::vector<Token>> Lex(std::string_view source);

// True if `word` (any case) is a reserved SQL keyword in this dialect.
bool IsKeyword(std::string_view word);

}  // namespace bornsql::sql

#endif  // BORNSQL_SQL_LEXER_H_
