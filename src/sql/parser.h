// Recursive-descent parser for the BornSQL dialect.
#ifndef BORNSQL_SQL_PARSER_H_
#define BORNSQL_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace bornsql::sql {

// Parses a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(std::string_view sql);

// Same, from an already-lexed token stream (must end with a kEof token).
// Lets callers that also need the raw tokens — e.g. for statement-text
// normalization — lex once instead of twice.
Result<Statement> ParseStatementTokens(std::vector<Token> tokens);

// Parses a ';'-separated script.
Result<std::vector<Statement>> ParseScript(std::string_view sql);

// Parses just an expression (used by tests).
Result<ExprPtr> ParseExpression(std::string_view sql);

}  // namespace bornsql::sql

#endif  // BORNSQL_SQL_PARSER_H_
