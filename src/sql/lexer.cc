#include "sql/lexer.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdlib>

#include "common/strings.h"

namespace bornsql::sql {
namespace {

// Reserved words of the dialect. Function names (POW, LN, SUM, ROW_NUMBER,
// ...) are deliberately NOT keywords: they lex as identifiers and the parser
// recognizes the call syntax, so they stay usable as column names.
constexpr std::array<std::string_view, 59> kKeywords = {
    "SELECT",  "FROM",    "WHERE",   "GROUP",    "BY",       "HAVING",
    "ORDER",   "ASC",     "DESC",    "LIMIT",    "OFFSET",   "AS",
    "AND",     "OR",      "NOT",     "NULL",     "IS",       "IN",
    "EXISTS",  "BETWEEN", "LIKE",    "CASE",     "WHEN",     "THEN",
    "ELSE",    "END",     "CAST",    "CREATE",   "TABLE",    "TEMP",
    "TEMPORARY", "IF",    "DROP",    "INSERT",   "INTO",     "VALUES",
    "ON",      "CONFLICT", "DO",     "UPDATE",   "SET",      "DELETE",
    "UNION",   "ALL",     "DISTINCT", "PRIMARY", "KEY",      "UNIQUE",
    "WITH",    "OVER",    "PARTITION", "JOIN",   "INNER",    "CROSS",
    "LEFT",    "INDEX",   "NOTHING", "EXPLAIN",  "ANALYZE",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(std::string_view word) {
  for (std::string_view k : kKeywords) {
    if (EqualsIgnoreCase(k, word)) return true;
  }
  return false;
}

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = src.size();

  // Line/column bookkeeping: `scanned` trails the token starts (which are
  // monotonically increasing), so the whole pass stays O(n).
  size_t line = 1;
  size_t line_start = 0;
  size_t scanned = 0;
  auto sync = [&](size_t to) {
    for (; scanned < to; ++scanned) {
      if (src[scanned] == '\n') {
        ++line;
        line_start = scanned + 1;
      }
    }
  };
  auto locate = [&](size_t at, size_t* out_line, size_t* out_column) {
    sync(at);
    *out_line = line;
    *out_column = at - line_start + 1;
  };
  auto here = [&](size_t at) {
    size_t l = 1, c = 1;
    locate(at, &l, &c);
    return StrFormat("line %zu:%zu", l, c);
  };

  auto make = [&](TokenType t, size_t at) {
    Token tok;
    tok.type = t;
    tok.offset = at;
    locate(at, &tok.line, &tok.column);
    return tok;
  };

  while (i < n) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && src[i + 1] == '-') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::ParseError(StrFormat("unterminated block comment at %s",
                                            here(start).c_str()));
      }
      i += 2;
      continue;
    }
    const size_t at = i;
    // String literal.
    if (c == '\'') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < n) {
        if (src[i] == '\'') {
          if (i + 1 < n && src[i + 1] == '\'') {  // '' escape
            body.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body.push_back(src[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(StrFormat("unterminated string literal at %s",
                                            here(at).c_str()));
      }
      Token tok = make(TokenType::kStringLiteral, at);
      tok.text = std::move(body);
      out.push_back(std::move(tok));
      continue;
    }
    // Quoted identifier.
    if (c == '"') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < n) {
        if (src[i] == '"') {
          if (i + 1 < n && src[i + 1] == '"') {
            body.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        body.push_back(src[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(StrFormat(
            "unterminated quoted identifier at %s", here(at).c_str()));
      }
      Token tok = make(TokenType::kIdentifier, at);
      tok.text = std::move(body);
      out.push_back(std::move(tok));
      continue;
    }
    // Number literal.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < n && src[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      std::string spelling(src.substr(i, j - i));
      if (is_double) {
        Token tok = make(TokenType::kDoubleLiteral, at);
        tok.text = spelling;
        tok.double_value = std::strtod(spelling.c_str(), nullptr);
        out.push_back(std::move(tok));
      } else {
        Token tok = make(TokenType::kIntLiteral, at);
        tok.text = spelling;
        int64_t v = 0;
        auto [ptr, ec] =
            std::from_chars(spelling.data(), spelling.data() + spelling.size(), v);
        if (ec != std::errc()) {
          // Overflowing integer literals degrade to double.
          tok.type = TokenType::kDoubleLiteral;
          tok.double_value = std::strtod(spelling.c_str(), nullptr);
        } else {
          (void)ptr;
          tok.int_value = v;
        }
        out.push_back(std::move(tok));
      }
      i = j;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(src[j])) ++j;
      std::string word(src.substr(i, j - i));
      Token tok = make(TokenType::kIdentifier, at);
      if (IsKeyword(word)) {
        tok.type = TokenType::kKeyword;
        tok.text = AsciiToLower(word);
        for (char& ch : tok.text) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
      } else {
        tok.text = std::move(word);
      }
      out.push_back(std::move(tok));
      i = j;
      continue;
    }
    // Operators and punctuation.
    switch (c) {
      case '(':
        out.push_back(make(TokenType::kLParen, at));
        ++i;
        break;
      case ')':
        out.push_back(make(TokenType::kRParen, at));
        ++i;
        break;
      case ',':
        out.push_back(make(TokenType::kComma, at));
        ++i;
        break;
      case '.':
        out.push_back(make(TokenType::kDot, at));
        ++i;
        break;
      case ';':
        out.push_back(make(TokenType::kSemicolon, at));
        ++i;
        break;
      case '*':
        out.push_back(make(TokenType::kStar, at));
        ++i;
        break;
      case '+':
        out.push_back(make(TokenType::kPlus, at));
        ++i;
        break;
      case '-':
        out.push_back(make(TokenType::kMinus, at));
        ++i;
        break;
      case '/':
        out.push_back(make(TokenType::kSlash, at));
        ++i;
        break;
      case '%':
        out.push_back(make(TokenType::kPercent, at));
        ++i;
        break;
      case '=':
        out.push_back(make(TokenType::kEq, at));
        ++i;
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          out.push_back(make(TokenType::kNotEq, at));
          i += 2;
        } else {
          return Status::ParseError(StrFormat(
              "unexpected character '!' at %s", here(at).c_str()));
        }
        break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          out.push_back(make(TokenType::kLtEq, at));
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '>') {
          out.push_back(make(TokenType::kNotEq, at));
          i += 2;
        } else {
          out.push_back(make(TokenType::kLt, at));
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          out.push_back(make(TokenType::kGtEq, at));
          i += 2;
        } else {
          out.push_back(make(TokenType::kGt, at));
          ++i;
        }
        break;
      case '|':
        if (i + 1 < n && src[i + 1] == '|') {
          out.push_back(make(TokenType::kConcat, at));
          i += 2;
        } else {
          return Status::ParseError(StrFormat(
              "unexpected character '|' at %s", here(at).c_str()));
        }
        break;
      case '?': {
        // Unnumbered parameter placeholder; ordinals are assigned by the
        // PREPARE path in source order (engine/parameters.cc).
        Token tok = make(TokenType::kParameter, at);
        tok.text = "?";
        tok.int_value = 0;
        out.push_back(std::move(tok));
        ++i;
        break;
      }
      case '$': {
        // Numbered parameter placeholder $1, $2, ...
        size_t j = i + 1;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        if (j == i + 1) {
          return Status::ParseError(StrFormat(
              "expected digits after '$' at %s", here(at).c_str()));
        }
        std::string spelling(src.substr(i, j - i));
        int64_t ordinal = 0;
        auto [ptr, ec] = std::from_chars(spelling.data() + 1,
                                         spelling.data() + spelling.size(),
                                         ordinal);
        (void)ptr;
        if (ec != std::errc() || ordinal < 1) {
          return Status::ParseError(StrFormat(
              "invalid parameter number '%s' at %s", spelling.c_str(),
              here(at).c_str()));
        }
        Token tok = make(TokenType::kParameter, at);
        tok.text = std::move(spelling);
        tok.int_value = ordinal;
        out.push_back(std::move(tok));
        i = j;
        break;
      }
      default:
        return Status::ParseError(StrFormat("unexpected character '%c' at %s",
                                            c, here(at).c_str()));
    }
  }
  out.push_back(make(TokenType::kEof, n));
  return out;
}

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEof: return "end of input";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kKeyword: return "keyword";
    case TokenType::kIntLiteral: return "integer literal";
    case TokenType::kDoubleLiteral: return "double literal";
    case TokenType::kStringLiteral: return "string literal";
    case TokenType::kParameter: return "parameter placeholder";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kComma: return "','";
    case TokenType::kDot: return "'.'";
    case TokenType::kSemicolon: return "';'";
    case TokenType::kStar: return "'*'";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kEq: return "'='";
    case TokenType::kNotEq: return "'<>'";
    case TokenType::kLt: return "'<'";
    case TokenType::kLtEq: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGtEq: return "'>='";
    case TokenType::kConcat: return "'||'";
  }
  return "?";
}

}  // namespace bornsql::sql
