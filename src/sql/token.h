// Token kinds produced by the SQL lexer.
#ifndef BORNSQL_SQL_TOKEN_H_
#define BORNSQL_SQL_TOKEN_H_

#include <string>

namespace bornsql::sql {

enum class TokenType {
  kEof,
  kIdentifier,     // foo, "quoted id"
  kKeyword,        // SELECT, FROM, ... (normalized upper-case in `text`)
  kIntLiteral,     // 42
  kDoubleLiteral,  // 1.5, 1e6
  kStringLiteral,  // 'abc' (text holds unescaped body)
  kParameter,      // ? (int_value 0) or $n (int_value n); PREPAREd SQL only
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNotEq,     // <> or !=
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kConcat,    // ||
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    // identifier/keyword/literal spelling
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t offset = 0;   // byte offset in the source
  size_t line = 1;     // 1-based source line, for diagnostics
  size_t column = 1;   // 1-based column within the line
};

const char* TokenTypeName(TokenType t);

}  // namespace bornsql::sql

#endif  // BORNSQL_SQL_TOKEN_H_
