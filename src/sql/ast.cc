#include "sql/ast.h"

namespace bornsql::sql {

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(left);
  e->right = std::move(right);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->loc = e.loc;
  out->literal = e.literal;
  out->qualifier = e.qualifier;
  out->column = e.column;
  out->unary_op = e.unary_op;
  out->binary_op = e.binary_op;
  if (e.left) out->left = CloneExpr(*e.left);
  if (e.right) out->right = CloneExpr(*e.right);
  out->func_name = e.func_name;
  for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
  for (const auto& p : e.partition_by) out->partition_by.push_back(CloneExpr(*p));
  for (const auto& [ex, desc] : e.window_order_by) {
    out->window_order_by.emplace_back(CloneExpr(*ex), desc);
  }
  for (const auto& [when, then] : e.when_clauses) {
    out->when_clauses.emplace_back(CloneExpr(*when), CloneExpr(*then));
  }
  if (e.else_clause) out->else_clause = CloneExpr(*e.else_clause);
  out->negated = e.negated;
  if (e.subquery) out->subquery = CloneSelect(*e.subquery);
  out->set_values = e.set_values;
  out->param_index = e.param_index;
  return out;
}

SelectCore CloneCore(const SelectCore& core) {
  SelectCore c;
  c.distinct = core.distinct;
  for (const auto& item : core.items) {
    SelectItem si;
    si.is_star = item.is_star;
    si.star_qualifier = item.star_qualifier;
    if (item.expr) si.expr = CloneExpr(*item.expr);
    si.alias = item.alias;
    c.items.push_back(std::move(si));
  }
  for (const auto& ref : core.from) {
    TableRef r;
    r.loc = ref.loc;
    r.table_name = ref.table_name;
    if (ref.subquery) r.subquery = CloneSelect(*ref.subquery);
    r.alias = ref.alias;
    r.join_kind = ref.join_kind;
    if (ref.join_condition) r.join_condition = CloneExpr(*ref.join_condition);
    c.from.push_back(std::move(r));
  }
  if (core.where) c.where = CloneExpr(*core.where);
  for (const auto& g : core.group_by) c.group_by.push_back(CloneExpr(*g));
  if (core.having) c.having = CloneExpr(*core.having);
  return c;
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s) {
  auto out = std::make_unique<SelectStmt>();
  for (const auto& cte : s.ctes) {
    CommonTableExpr c;
    c.loc = cte.loc;
    c.name = cte.name;
    c.select = CloneSelect(*cte.select);
    out->ctes.push_back(std::move(c));
  }
  for (const auto& core : s.cores) {
    out->cores.push_back(CloneCore(core));
  }
  for (const auto& o : s.order_by) {
    OrderItem item;
    item.expr = CloneExpr(*o.expr);
    item.desc = o.desc;
    out->order_by.push_back(std::move(item));
  }
  if (s.limit) out->limit = CloneExpr(*s.limit);
  if (s.offset) out->offset = CloneExpr(*s.offset);
  return out;
}

std::unique_ptr<Statement> CloneStatement(const Statement& s) {
  auto out = std::make_unique<Statement>();
  out->kind = s.kind;
  switch (s.kind) {
    case StatementKind::kSelect:
      out->select = CloneSelect(*s.select);
      return out;
    case StatementKind::kInsert: {
      auto ins = std::make_unique<InsertStmt>();
      ins->table = s.insert->table;
      ins->columns = s.insert->columns;
      for (const auto& row : s.insert->values) {
        std::vector<ExprPtr> cloned;
        for (const auto& v : row) cloned.push_back(CloneExpr(*v));
        ins->values.push_back(std::move(cloned));
      }
      if (s.insert->select) ins->select = CloneSelect(*s.insert->select);
      if (s.insert->on_conflict) {
        auto oc = std::make_unique<OnConflictClause>();
        oc->target_columns = s.insert->on_conflict->target_columns;
        oc->do_nothing = s.insert->on_conflict->do_nothing;
        for (const auto& [col, expr] : s.insert->on_conflict->set_clauses) {
          oc->set_clauses.emplace_back(col, CloneExpr(*expr));
        }
        ins->on_conflict = std::move(oc);
      }
      out->insert = std::move(ins);
      return out;
    }
    case StatementKind::kUpdate: {
      auto upd = std::make_unique<UpdateStmt>();
      upd->table = s.update->table;
      for (const auto& [col, expr] : s.update->set_clauses) {
        upd->set_clauses.emplace_back(col, CloneExpr(*expr));
      }
      if (s.update->where) upd->where = CloneExpr(*s.update->where);
      upd->loc = s.update->loc;
      out->update = std::move(upd);
      return out;
    }
    case StatementKind::kDelete: {
      auto del = std::make_unique<DeleteStmt>();
      del->table = s.del->table;
      if (s.del->where) del->where = CloneExpr(*s.del->where);
      del->loc = s.del->loc;
      out->del = std::move(del);
      return out;
    }
    default:
      return nullptr;
  }
}

}  // namespace bornsql::sql
