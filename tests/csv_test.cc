// Tests for CSV import/export (engine/csv.h).
#include "engine/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;

TEST(CsvParseTest, SimpleLine) {
  auto cells = ParseCsvLine("a,b,c", ',');
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 3u);
  EXPECT_EQ((*cells)[1], "b");
}

TEST(CsvParseTest, QuotedCellsWithCommasAndQuotes) {
  auto cells = ParseCsvLine(R"(plain,"has, comma","she said ""hi""")", ',');
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 3u);
  EXPECT_EQ((*cells)[1], "has, comma");
  EXPECT_EQ((*cells)[2], "she said \"hi\"");
}

TEST(CsvParseTest, EmptyCells) {
  auto cells = ParseCsvLine(",,", ',');
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 3u);
  for (const auto& c : *cells) EXPECT_TRUE(c.empty());
}

TEST(CsvParseTest, QuotedNewlineInsideCell) {
  auto rows = ParseCsv("a,\"line1\nline2\",c\nd,e,f\n", ',');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
}

TEST(CsvParseTest, CrLfAndTrailingNewlines) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n\n", ',');
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1][0], "c");
}

TEST(CsvParseTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsv("a,\"open", ',').ok());
}

TEST(CsvLoadTest, CreatesTableAndInfersTypes) {
  Database db;
  auto loaded = LoadCsv(&db, "people",
                        "name,age,score\n"
                        "ada,36,9.5\n"
                        "bob,41,7.25\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, 2u);
  auto r = MustQuery(db, "SELECT SUM(age), MAX(score) FROM people");
  EXPECT_EQ(r.rows[0][0].AsInt(), 77);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 9.5);
  auto name = MustQuery(db, "SELECT name FROM people WHERE age = 36");
  EXPECT_EQ(name.rows[0][0].AsText(), "ada");
}

TEST(CsvLoadTest, EmptyCellIsNull) {
  Database db;
  auto loaded = LoadCsv(&db, "t", "a,b\n1,\n,2\n");
  ASSERT_TRUE(loaded.ok());
  auto r = MustQuery(db, "SELECT COUNT(*) FROM t WHERE b IS NULL");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST(CsvLoadTest, NoTypeInference) {
  Database db;
  CsvOptions options;
  options.infer_types = false;
  auto loaded = LoadCsv(&db, "t", "a\n42\n", options);
  ASSERT_TRUE(loaded.ok());
  auto r = MustQuery(db, "SELECT a FROM t");
  EXPECT_TRUE(r.rows[0][0].is_text());
}

TEST(CsvLoadTest, IntoExistingTableCoerces) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript("CREATE TABLE t (a INTEGER, b TEXT)"));
  auto loaded = LoadCsv(&db, "t", "a,b\n1.9,hello\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto r = MustQuery(db, "SELECT a FROM t");
  EXPECT_TRUE(r.rows[0][0].is_int());
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST(CsvLoadTest, ColumnCountMismatchFails) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript("CREATE TABLE t (a INTEGER)"));
  EXPECT_FALSE(LoadCsv(&db, "t", "a,b\n1,2\n").ok());
  EXPECT_FALSE(LoadCsv(&db, "u", "a,b\n1\n").ok());  // ragged row
}

TEST(CsvLoadTest, HeaderlessUsesPositionalNames) {
  Database db;
  CsvOptions options;
  options.has_header = false;
  auto loaded = LoadCsv(&db, "t", "1,x\n2,y\n", options);
  ASSERT_TRUE(loaded.ok());
  auto r = MustQuery(db, "SELECT c2 FROM t WHERE c1 = 2");
  EXPECT_EQ(r.rows[0][0].AsText(), "y");
}

TEST(CsvExportTest, RoundTrip) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE t (a INTEGER, s TEXT);"
      "INSERT INTO t VALUES (1, 'plain'), (2, 'with, comma'), "
      "(3, NULL)"));
  auto result = db.Execute("SELECT a, s FROM t ORDER BY a");
  ASSERT_TRUE(result.ok());
  std::string csv = ToCsv(*result);
  EXPECT_EQ(csv,
            "a,s\n"
            "1,plain\n"
            "2,\"with, comma\"\n"
            "3,\n");

  Database db2;
  auto loaded = LoadCsv(&db2, "t", csv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 3u);
  auto r = MustQuery(db2, "SELECT s FROM t WHERE a = 2");
  EXPECT_EQ(r.rows[0][0].AsText(), "with, comma");
}

TEST(CsvFileTest, LoadAndDumpFiles) {
  const char* in_path = "/tmp/bornsql_csv_in.csv";
  const char* out_path = "/tmp/bornsql_csv_out.csv";
  {
    std::ofstream out(in_path);
    out << "k,v\n1,10\n2,20\n";
  }
  Database db;
  auto loaded = LoadCsvFile(&db, "kv", in_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 2u);
  BORNSQL_ASSERT_OK(
      DumpCsvFile(&db, "SELECT k, v * 2 AS d FROM kv ORDER BY k", out_path));
  std::ifstream in(out_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,d\n1,20\n2,40\n");
  std::remove(in_path);
  std::remove(out_path);
}

TEST(CsvFileTest, MissingFileFails) {
  Database db;
  EXPECT_FALSE(LoadCsvFile(&db, "t", "/does/not/exist.csv").ok());
}

}  // namespace
}  // namespace bornsql::engine
