// Tests for the hierarchical memory accounting subsystem: the tracker
// itself (reserve/release, limit denial with unwind, snapshot shape, a
// TSan-targeted concurrent hammer), memory-limit fault injection through
// every materializing operator type, the session-level limit in the
// serving layer, plan-cache charge consistency, and the Prometheus text
// exposition including the memory gauge families.
#include "obs/memory.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"
#include "serve/plan_cache.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

using engine::Database;
using engine::EngineConfig;
using engine::JoinStrategy;
using engine::QueryResult;
using testing::MustQuery;
using testing::RowStrings;

// ---------------------------------------------------------------------------
// MemoryTracker unit tests

TEST(MemoryTrackerTest, ReserveReleaseAndPeak) {
  obs::MemoryTracker root("root", "test", nullptr);
  obs::MemoryTracker child("child", "test", &root);
  child.Reserve(100);
  EXPECT_EQ(child.current(), 100u);
  EXPECT_EQ(root.current(), 100u);
  child.Reserve(50);
  EXPECT_EQ(child.peak(), 150u);
  child.Release(120);
  EXPECT_EQ(child.current(), 30u);
  EXPECT_EQ(root.current(), 30u);
  EXPECT_EQ(root.peak(), 150u);
  child.Release(30);
  EXPECT_EQ(root.current(), 0u);
}

TEST(MemoryTrackerTest, TryReserveDenialUnwindsAndCounts) {
  obs::MemoryTracker root("root", "process", nullptr);
  obs::MemoryTracker session("session 1", "session", &root);
  obs::MemoryTracker query("query", "query", &session);
  session.set_limit(100);

  BORNSQL_ASSERT_OK(query.TryReserve(60, "HashJoin(inner, 1 keys)"));
  EXPECT_EQ(root.current(), 60u);

  // 60 + 50 would put the session over its 100-byte limit: the charge must
  // unwind completely (query charged first, then session denies).
  Status denied = query.TryReserve(50, "HashJoin(inner, 1 keys)");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(denied.message().find("memory limit exceeded"),
            std::string::npos) << denied.message();
  EXPECT_NE(denied.message().find("HashJoin(inner, 1 keys)"),
            std::string::npos) << denied.message();
  EXPECT_NE(denied.message().find("session tracker 'session 1'"),
            std::string::npos) << denied.message();
  // No partial accounting left anywhere in the chain.
  EXPECT_EQ(query.current(), 60u);
  EXPECT_EQ(session.current(), 60u);
  EXPECT_EQ(root.current(), 60u);
  // The denial is counted on the denying tracker, not the reserving one.
  EXPECT_EQ(session.denials(), 1u);
  EXPECT_EQ(query.denials(), 0u);
  EXPECT_EQ(root.denials(), 0u);

  // A second failed attempt counts again; a fitting one still succeeds.
  EXPECT_FALSE(query.TryReserve(41, "Sort(1 keys)").ok());
  EXPECT_EQ(session.denials(), 2u);
  BORNSQL_ASSERT_OK(query.TryReserve(40, "Sort(1 keys)"));
  EXPECT_EQ(session.current(), 100u);
  query.Release(100);
  EXPECT_EQ(root.current(), 0u);
}

TEST(MemoryTrackerTest, ReleaseSaturatesAtZero) {
  obs::MemoryTracker root("root", "test", nullptr);
  root.Reserve(10);
  root.Release(25);  // double-release must not wrap the gauge
  EXPECT_EQ(root.current(), 0u);
  EXPECT_EQ(root.peak(), 10u);
}

TEST(MemoryTrackerTest, ResetPeakDropsToCurrent) {
  obs::MemoryTracker root("root", "test", nullptr);
  root.Reserve(100);
  root.Release(70);
  EXPECT_EQ(root.peak(), 100u);
  root.ResetPeak();
  EXPECT_EQ(root.peak(), 30u);
}

TEST(MemoryTrackerTest, SnapshotTreeIsPreOrderWithDepths) {
  obs::MemoryTracker root("root", "process", nullptr);
  obs::MemoryTracker a("a", "session", &root);
  obs::MemoryTracker leaf("leaf", "query", &a);
  obs::MemoryTracker b("b", "cache", &root);
  b.set_limit(4096);
  leaf.Reserve(64);

  std::vector<obs::MemoryTracker::SnapshotRow> rows = root.SnapshotTree();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].label, "root");
  EXPECT_EQ(rows[0].depth, 0);
  EXPECT_EQ(rows[0].current_bytes, 64u);
  EXPECT_EQ(rows[1].label, "a");
  EXPECT_EQ(rows[1].level, "session");
  EXPECT_EQ(rows[1].depth, 1);
  EXPECT_EQ(rows[2].label, "leaf");
  EXPECT_EQ(rows[2].depth, 2);
  EXPECT_EQ(rows[2].current_bytes, 64u);
  EXPECT_EQ(rows[3].label, "b");
  EXPECT_EQ(rows[3].depth, 1);
  EXPECT_EQ(rows[3].limit_bytes, 4096u);
  leaf.Release(64);
}

// TSan target (ci.sh leg 3 runs -R 'Concurrent'): concurrent reserves,
// releases, denials, and child registration against one shared parent,
// racing a snapshot reader. The invariant at the end is exact: every
// thread releases what it reserved, so the shared root drains to zero.
TEST(MemoryTrackerConcurrentTest, ConcurrentHammer) {
  obs::MemoryTracker root("root", "process", nullptr);
  obs::MemoryTracker shared("shared", "session", &root);
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::atomic<bool> stop{false};

  std::thread snapshotter([&] {
    while (!stop.load()) {
      std::vector<obs::MemoryTracker::SnapshotRow> rows = root.SnapshotTree();
      ASSERT_FALSE(rows.empty());
      (void)root.current();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, t] {
      for (int i = 0; i < kIters; ++i) {
        // Child lifetime races the snapshot walk: register, charge through
        // the chain, unwind, unregister.
        obs::MemoryTracker local("query", "query", &shared);
        local.Reserve(64);
        if (local.TryReserve(32, "hammer").ok()) local.Release(32);
        local.set_limit(1);
        EXPECT_FALSE(local.TryReserve(1024, "hammer").ok());
        local.Release(64);
        (void)t;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  snapshotter.join();
  EXPECT_EQ(shared.current(), 0u);
  EXPECT_EQ(root.current(), 0u);
}

// Regression test for peak tracking under concurrency. Each thread reads
// current() right after its own reserve — a value the true high-water mark
// must have reached — so max-over-threads of those observations is a sound
// lower bound for the peak the tracker must have recorded. A plain
// load-compare-store peak update loses races and ends below this bound.
TEST(MemoryTrackerConcurrentTest, ConcurrentPeakIsNeverUnderCounted) {
  obs::MemoryTracker root("root", "process", nullptr);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  std::vector<uint64_t> observed(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&root, &observed, t] {
      uint64_t high = 0;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t bytes = 1 + static_cast<uint64_t>((t + i) % 97);
        root.Reserve(bytes);
        // current() here is <= the instantaneous maximum of current over
        // the whole run, so peak() must end >= it.
        high = std::max(high, root.current());
        root.Release(bytes);
      }
      observed[t] = high;
    });
  }
  for (std::thread& w : workers) w.join();

  const uint64_t high_water =
      *std::max_element(observed.begin(), observed.end());
  EXPECT_GE(root.peak(), high_water);
  EXPECT_EQ(root.current(), 0u);
}

// ResetPeak racing reserves must never leave peak below the live charge:
// the reset re-applies a CAS max against current after its store.
TEST(MemoryTrackerConcurrentTest, ConcurrentResetPeakKeepsPeakAboveCurrent) {
  obs::MemoryTracker root("root", "process", nullptr);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};

  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) root.ResetPeak();
  });

  // Workers accumulate held charges (never releasing mid-run), so current
  // only grows while the resetter races. A load-then-store reset can
  // clobber the peak with a stale smaller value and leave it below the
  // live charge at quiescence; the CAS-max re-apply cannot.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&root] {
      for (int i = 0; i < kIters; ++i) {
        root.Reserve(8);
        (void)root.peak();  // racing read, for TSan's benefit
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  resetter.join();
  const uint64_t held = uint64_t{8} * kThreads * kIters;
  EXPECT_EQ(root.current(), held);
  EXPECT_GE(root.peak(), held);
  root.Release(held);
  EXPECT_EQ(root.current(), 0u);
  root.ResetPeak();
  EXPECT_EQ(root.peak(), 0u);
}

// ---------------------------------------------------------------------------
// Memory-limit fault injection: every materializing operator type must
// trip cleanly under SET born.memory_limit, naming itself in the error,
// and the engine must stay usable afterwards.

void LoadJoinFixture(Database* db) {
  BORNSQL_ASSERT_OK(db->ExecuteScript(
      "CREATE TABLE t1 (a INTEGER, b TEXT);"
      "INSERT INTO t1 VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w');"
      "CREATE TABLE t2 (a INTEGER, c INTEGER);"
      "INSERT INTO t2 VALUES (2,20),(3,30),(9,90);"));
}

// Runs `sql` under a 1-byte query budget and expects a ResourceExhausted
// failure naming `op_name`; then lifts the limit and expects the same
// query to succeed (the engine stays usable, nothing leaks).
void ExpectTripsAndRecovers(Database& db, const std::string& sql,
                            const std::string& op_name) {
  BORNSQL_ASSERT_OK(db.Execute("SET born.memory_limit = 1").status());
  auto result = db.Execute(sql);
  ASSERT_FALSE(result.ok()) << "expected over-budget failure for: " << sql;
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("memory limit exceeded"),
            std::string::npos) << result.status().ToString();
  EXPECT_NE(result.status().message().find(op_name), std::string::npos)
      << "expected tripping operator " << op_name << " in: "
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("query tracker 'query'"),
            std::string::npos) << result.status().ToString();
  BORNSQL_ASSERT_OK(db.Execute("SET born.memory_limit = 0").status());
  EXPECT_TRUE(db.Execute(sql).ok()) << "engine unusable after denial: "
                                    << sql;
}

TEST(MemoryLimitTest, HashJoinTrips) {
  Database db;
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(
      db, "SELECT t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a", "HashJoin");
}

TEST(MemoryLimitTest, SortMergeJoinTrips) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kSortMerge;
  Database db{config};
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(
      db, "SELECT t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a",
      "SortMergeJoin");
}

TEST(MemoryLimitTest, NestedLoopJoinTrips) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kNestedLoop;
  Database db{config};
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(
      db, "SELECT t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a",
      "NestedLoopJoin");
}

TEST(MemoryLimitTest, HashAggregateTrips) {
  Database db;
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(db, "SELECT b, COUNT(*) FROM t1 GROUP BY b",
                         "HashAggregate");
}

TEST(MemoryLimitTest, SortTrips) {
  Database db;
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(db, "SELECT a FROM t1 ORDER BY a", "Sort");
}

TEST(MemoryLimitTest, DistinctTrips) {
  Database db;
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(db, "SELECT DISTINCT b FROM t1", "Distinct");
}

TEST(MemoryLimitTest, WindowTrips) {
  Database db;
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(
      db,
      "SELECT a, ROW_NUMBER() OVER (PARTITION BY b ORDER BY a) FROM t1",
      "Window");
}

TEST(MemoryLimitTest, MaterializedCteTrips) {
  Database db;  // materialize_ctes defaults on
  LoadJoinFixture(&db);
  ExpectTripsAndRecovers(db, "WITH c AS (SELECT b FROM t1) SELECT * FROM c",
                         "CteScan");
}

TEST(MemoryLimitTest, SystemViewScanTrips) {
  Database db;
  LoadJoinFixture(&db);
  MustQuery(db, "SELECT a FROM t1");  // give the view a row to charge
  ExpectTripsAndRecovers(db, "SELECT * FROM born_stat_statements",
                         "SystemViewScan");
}

TEST(MemoryLimitTest, RejectsNegativeLimit) {
  Database db;
  auto result = db.Execute("SET born.memory_limit = -1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MemoryLimitTest, QueryTrackersDrainToZeroAfterDenials) {
  Database db;
  LoadJoinFixture(&db);
  // A few denied queries must leave no residual query-level accounting:
  // born_stat_memory's query rows (including the introspection query's
  // own tracker, which snapshots after releasing) all read zero.
  BORNSQL_ASSERT_OK(db.Execute("SET born.memory_limit = 1").status());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(
        db.Execute("SELECT t1.b FROM t1 JOIN t2 ON t1.a = t2.a").ok());
  }
  BORNSQL_ASSERT_OK(db.Execute("SET born.memory_limit = 0").status());
  QueryResult result = MustQuery(
      db,
      "SELECT current_bytes FROM born_stat_memory WHERE level = 'query'");
  ASSERT_GE(result.rows.size(), 1u);
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[0].AsInt(), 0);
  }
}

// ---------------------------------------------------------------------------
// Session-level limits through the serving layer

std::unique_ptr<serve::Server> MakeServingFixture() {
  auto server = std::make_unique<serve::Server>();
  BORNSQL_EXPECT_OK(server->Bootstrap(
      "CREATE TABLE t (a INTEGER, b TEXT);"
      "INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w');"
      "CREATE TABLE s (a INTEGER, c INTEGER);"
      "INSERT INTO s VALUES (2,20),(3,30),(9,90);"));
  return server;
}

TEST(SessionMemoryLimitTest, SessionLimitDeniesThenRecovers) {
  auto server = MakeServingFixture();
  auto session = server->Connect();
  BORNSQL_ASSERT_OK(
      session->Execute("SET born.session_memory_limit = 1").status());
  auto result =
      session->Execute("SELECT t.b, s.c FROM t JOIN s ON t.a = s.a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("session tracker"),
            std::string::npos) << result.status().ToString();
  EXPECT_GE(session->memory().denials(), 1u);
  // Lifting the limit makes the same session usable again, and the failed
  // query left nothing charged behind.
  BORNSQL_ASSERT_OK(
      session->Execute("SET born.session_memory_limit = 0").status());
  EXPECT_EQ(session->memory().current(), 0u);
  auto ok = session->Execute("SELECT t.b, s.c FROM t JOIN s ON t.a = s.a");
  BORNSQL_EXPECT_OK(ok.status());
  EXPECT_GT(session->memory().peak(), 0u);
}

TEST(SessionMemoryLimitTest, RejectsNegativeSessionLimit) {
  auto server = MakeServingFixture();
  auto session = server->Connect();
  auto result = session->Execute("SET born.session_memory_limit = -1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionMemoryLimitTest, BareDatabaseRejectsSessionSetting) {
  Database db;
  auto result = db.Execute("SET born.session_memory_limit = 1024");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("serving session"),
            std::string::npos) << result.status().ToString();
}

TEST(SessionMemoryLimitTest, SessionsViewExposesMemoryColumns) {
  auto server = MakeServingFixture();
  auto session = server->Connect();
  BORNSQL_EXPECT_OK(session->Execute("SELECT b FROM t ORDER BY a").status());
  QueryResult result;
  {
    auto r = session->Execute(
        "SELECT current_bytes, peak_bytes FROM born_stat_sessions");
    BORNSQL_ASSERT_OK(r.status());
    result = std::move(r).value();
  }
  ASSERT_EQ(result.rows.size(), 1u);
  // No query is charging at snapshot time; the earlier ORDER BY left a
  // nonzero session high-water mark.
  EXPECT_EQ(result.rows[0][0].AsInt(), 0);
  EXPECT_GT(result.rows[0][1].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// Plan-cache byte accounting

std::shared_ptr<const serve::CachedPlan> MakeEntry(uint64_t bytes,
                                                   std::string statement) {
  auto plan = std::make_shared<serve::CachedPlan>();
  plan->statement = std::move(statement);
  plan->approx_bytes = bytes;
  return plan;
}

uint64_t SnapshotBytes(const serve::PlanCache& cache) {
  uint64_t sum = 0;
  for (const serve::PlanCache::EntryInfo& e : cache.Snapshot()) {
    sum += e.approx_bytes;
  }
  return sum;
}

TEST(PlanCacheMemoryTest, ChargeStaysBalancedAcrossChurn) {
  obs::MemoryTracker& tracker = serve::PlanCache::CacheTracker();
  const uint64_t base = tracker.current();
  {
    serve::PlanCache cache(4);
    cache.Insert("k1", MakeEntry(100, "s1"));
    EXPECT_EQ(cache.total_bytes(), 100u);
    EXPECT_EQ(tracker.current() - base, 100u);

    // Replacing a key releases the old entry's charge first.
    cache.Insert("k1", MakeEntry(250, "s1v2"));
    EXPECT_EQ(cache.total_bytes(), 250u);
    EXPECT_EQ(tracker.current() - base, 250u);

    // Churn far past capacity: evictions must keep the charge equal to
    // the bytes of the entries actually live.
    for (int i = 0; i < 32; ++i) {
      cache.Insert("bulk" + std::to_string(i), MakeEntry(10, "b"));
    }
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.total_bytes(), SnapshotBytes(cache));
    EXPECT_EQ(tracker.current() - base, cache.total_bytes());

    // Shrinking capacity evicts and releases in the same motion.
    cache.set_capacity(1);
    EXPECT_EQ(cache.total_bytes(), SnapshotBytes(cache));
    EXPECT_EQ(tracker.current() - base, cache.total_bytes());

    cache.Clear();
    EXPECT_EQ(cache.total_bytes(), 0u);
    EXPECT_EQ(tracker.current(), base);

    cache.Insert("again", MakeEntry(70, "s"));
    EXPECT_EQ(tracker.current() - base, 70u);
  }
  // The destructor releases whatever was still live.
  EXPECT_EQ(tracker.current(), base);
}

TEST(PlanCacheMemoryTest, ApproxBytesCoversPlanAndStatement) {
  serve::CachedPlan plan;
  plan.statement = "SELECT a FROM t WHERE a = $1";
  const uint64_t empty = serve::ApproxCachedPlanBytes(plan);
  EXPECT_GE(empty, sizeof(serve::CachedPlan) + plan.statement.size());
  plan.statement.assign(1000, 'x');
  EXPECT_GE(serve::ApproxCachedPlanBytes(plan), empty + 900);
}

TEST(PlanCacheMemoryTest, ServingEntriesCarryBytes) {
  auto server = MakeServingFixture();
  auto session = server->Connect();
  BORNSQL_EXPECT_OK(session->Execute("SELECT b FROM t WHERE a = 1").status());
  auto result = session->Execute(
      "SELECT approx_bytes FROM born_stat_plan_cache");
  BORNSQL_ASSERT_OK(result.status());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_GT(result->rows[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PrometheusExportTest, FormatFamiliesAndMemoryGauges) {
  obs::MetricsRegistry registry;
  registry.IncrementCounter("plan_cache_hits", 3);
  registry.SetGauge("plan_cache_entries", 7.0);
  registry.RecordLatency("statement_latency_us", 2e-6);  // 2us -> le="5"
  registry.RecordLatency("statement_latency_us", 9.0);   // 9s -> +Inf only

  obs::MemoryTracker root("proc", "process", nullptr);
  obs::MemoryTracker query("query", "query", &root);
  query.set_limit(4096);
  query.Reserve(512);
  registry.set_memory_root(&root);

  const std::string text = registry.ToPrometheus();
  for (const char* expected : {
           "# TYPE bornsql_plan_cache_hits_total counter",
           "bornsql_plan_cache_hits_total 3",
           "# TYPE bornsql_plan_cache_entries gauge",
           "bornsql_plan_cache_entries 7",
           "# TYPE bornsql_statement_latency_us histogram",
           "bornsql_statement_latency_us_bucket{le=\"1\"} 0",
           "bornsql_statement_latency_us_bucket{le=\"5\"} 1",
           "bornsql_statement_latency_us_bucket{le=\"5000000\"} 1",
           "bornsql_statement_latency_us_bucket{le=\"+Inf\"} 2",
           "bornsql_statement_latency_us_count 2",
           "bornsql_statement_latency_us_sum",
           "# TYPE bornsql_memory_current_bytes gauge",
           "bornsql_memory_current_bytes{tracker=\"query\",level=\"query\"} "
           "512",
           "bornsql_memory_peak_bytes{tracker=\"query\",level=\"query\"} 512",
           "bornsql_memory_limit_bytes{tracker=\"query\",level=\"query\"} "
           "4096",
           "# TYPE bornsql_memory_denials gauge",
       }) {
    EXPECT_NE(text.find(expected), std::string::npos)
        << "missing \"" << expected << "\" in:\n" << text;
  }
  query.Release(512);
}

TEST(PrometheusExportTest, ResetClearsCountersAndGauges) {
  obs::MetricsRegistry registry;
  registry.IncrementCounter("queries_executed", 5);
  registry.SetGauge("plan_cache_entries", 9.0);
  registry.RecordLatency("statement_latency_us", 0.001);
  registry.Reset();
  EXPECT_EQ(registry.counter("queries_executed"), 0u);
  EXPECT_EQ(registry.gauge("plan_cache_entries"), 0.0);
  EXPECT_TRUE(registry.GaugesSnapshot().empty());
  EXPECT_EQ(registry.histogram("statement_latency_us").count(), 0u);
}

// ---------------------------------------------------------------------------
// Per-operator peak_mem surfaces in the instrumentation aggregates

TEST(OperatorMemoryStatsTest, PeakMemSurfacesInAggregatesAndView) {
  obs::MetricsRegistry metrics;  // private registry: no cross-test state
  EngineConfig config;
  config.collect_exec_stats = true;
  Database db{config};
  db.set_metrics(&metrics);
  LoadJoinFixture(&db);
  MustQuery(db, "SELECT t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a");
  MustQuery(db, "SELECT b, COUNT(*) FROM t1 GROUP BY b");

  EXPECT_GT(metrics.operator_aggregate("HashJoin").stats.peak_mem_bytes, 0u);
  EXPECT_GT(metrics.operator_aggregate("HashAggregate").stats.peak_mem_bytes,
            0u);

  QueryResult result = MustQuery(
      db,
      "SELECT peak_mem FROM born_stat_operators WHERE operator = 'HashJoin'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_GT(result.rows[0][0].AsInt(), 0);
  // The query-level high-water mark is recorded on the database too.
  EXPECT_GT(db.last_query_peak_bytes(), 0u);
}

}  // namespace
}  // namespace bornsql
