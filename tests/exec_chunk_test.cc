// Chunk-boundary edge cases for the vectorized executor: every operator is
// driven at deliberately awkward vector sizes (1, 2, 3, a prime, the
// default) so partial last chunks, filter-to-zero chunks, and mid-chunk
// LIMIT/OFFSET cuts all occur. The invariant under test everywhere: the
// drained row set is identical at every chunk size, because vector_size
// changes execution granularity, never results (DESIGN.md section 14).
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "exec/chunk.h"
#include "exec/evaluator.h"
#include "exec/operators.h"
#include "tests/test_util.h"

namespace bornsql::exec {
namespace {

Schema OneCol(const char* qualifier, const char* name) {
  Schema s;
  s.Add(Column{qualifier, name, ValueType::kNull});
  return s;
}

Schema TwoCols(const char* qualifier, const char* a, const char* b) {
  Schema s;
  s.Add(Column{qualifier, a, ValueType::kNull});
  s.Add(Column{qualifier, b, ValueType::kNull});
  return s;
}

OperatorPtr Rows(Schema schema, std::vector<Row> rows) {
  auto data = std::make_shared<MaterializedResult>();
  data->schema = schema;
  data->rows = std::move(rows);
  return std::make_unique<MaterializedScanOp>(std::move(data),
                                              std::move(schema));
}

std::vector<Row> MustDrain(Operator& op) {
  auto result = Drain(op);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result->rows) : std::vector<Row>{};
}

// Drains `op` at the given vector size and returns the rows.
std::vector<Row> DrainAt(Operator& op, size_t vector_size) {
  op.SetVectorSize(vector_size);
  return MustDrain(op);
}

// Ints [0, n) as single-column rows.
std::vector<Row> IntRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) rows.push_back({Value::Int(i)});
  return rows;
}

void ExpectSameRows(const std::vector<Row>& got, const std::vector<Row>& want,
                    size_t vector_size) {
  ASSERT_EQ(got.size(), want.size()) << "at vector_size=" << vector_size;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << "row " << i;
    for (size_t c = 0; c < got[i].size(); ++c) {
      EXPECT_EQ(got[i][c].ToString(), want[i][c].ToString())
          << "row " << i << " col " << c << " at vector_size=" << vector_size;
    }
  }
}

// The awkward sizes: scalar, tiny, prime vs the 7/10/12-row inputs below
// (forcing partial last chunks), and the production default.
const size_t kSizes[] = {1, 2, 3, 5, Operator::kDefaultVectorSize};

std::vector<BoundExprPtr> Keys(size_t idx) {
  std::vector<BoundExprPtr> keys;
  keys.push_back(BoundColumn(idx));
  return keys;
}

// x % 2 as a bound expression (used as a filter: keeps odd values).
BoundExprPtr OddPredicate(size_t col) {
  auto mod = std::make_unique<BoundExpr>();
  mod->kind = BoundKind::kBinary;
  mod->binary_op = BoundBinaryOp::kMod;
  mod->children.push_back(BoundColumn(col));
  mod->children.push_back(BoundLiteral(Value::Int(2)));
  return mod;
}

TEST(ExecChunkTest, FilterResultsIdenticalAtEveryVectorSize) {
  std::vector<Row> want;
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 1) want.push_back({Value::Int(i)});
  }
  for (size_t vs : kSizes) {
    FilterOp filter(Rows(OneCol("t", "a"), IntRows(12)), OddPredicate(0));
    ExpectSameRows(DrainAt(filter, vs), want, vs);
  }
}

TEST(ExecChunkTest, FilterToZeroSelectionYieldsNoRows) {
  // Every chunk filters to an empty selection; the operator must keep
  // pulling (Drain asserts chunks are non-empty) and report exhaustion.
  for (size_t vs : kSizes) {
    FilterOp filter(Rows(OneCol("t", "a"), IntRows(10)),
                    BoundLiteral(Value::Int(0)));
    EXPECT_TRUE(DrainAt(filter, vs).empty()) << "vector_size=" << vs;
  }
}

TEST(ExecChunkTest, FilterSkipsAllRejectedMiddleChunks) {
  // 0..9 with only the first and last rows truthy: at vector_size=2 the
  // middle chunks select zero rows and must be skipped, not emitted empty.
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::Int(i == 0 || i == 9 ? 1 : 0), Value::Int(i)});
  }
  std::vector<Row> want = {{Value::Int(1), Value::Int(0)},
                           {Value::Int(1), Value::Int(9)}};
  for (size_t vs : kSizes) {
    FilterOp filter(Rows(TwoCols("t", "keep", "i"), rows), BoundColumn(0));
    ExpectSameRows(DrainAt(filter, vs), want, vs);
  }
}

TEST(ExecChunkTest, EmptyInputThroughPipelines) {
  for (size_t vs : kSizes) {
    FilterOp filter(Rows(OneCol("t", "a"), {}), BoundColumn(0));
    EXPECT_TRUE(DrainAt(filter, vs).empty());

    std::vector<BoundExprPtr> exprs;
    exprs.push_back(BoundColumn(0));
    ProjectOp project(Rows(OneCol("t", "a"), {}), std::move(exprs),
                      OneCol("", "p"));
    EXPECT_TRUE(DrainAt(project, vs).empty());

    DistinctOp distinct(Rows(OneCol("t", "a"), {}));
    EXPECT_TRUE(DrainAt(distinct, vs).empty());
  }
}

TEST(ExecChunkTest, LimitOffsetCutsMidChunk) {
  // All 49 (limit, offset) cuts over 10 rows, each at every chunk size:
  // covers offset consuming whole chunks, offset ending mid-chunk, limit
  // truncating mid-chunk, and limit+offset spanning a chunk boundary.
  for (int64_t offset = 0; offset <= 6; ++offset) {
    for (int64_t limit = 0; limit <= 6; ++limit) {
      std::vector<Row> want;
      for (int i = 0; i < 10; ++i) {
        if (i >= offset && static_cast<int64_t>(want.size()) < limit) {
          want.push_back({Value::Int(i)});
        }
      }
      for (size_t vs : kSizes) {
        LimitOp op(Rows(OneCol("t", "a"), IntRows(10)), limit, offset);
        ExpectSameRows(DrainAt(op, vs), want, vs);
      }
    }
  }
}

TEST(ExecChunkTest, LimitStopsPullingOnceSatisfied) {
  // LIMIT 1 over a scan at vector_size=1 must not drain the whole input:
  // the scan's stats show how many chunks were actually pulled.
  auto scan = Rows(OneCol("t", "a"), IntRows(10));
  Operator* scan_ptr = scan.get();
  LimitOp op(std::move(scan), /*limit=*/1, /*offset=*/0);
  op.EnableStats(true);
  op.SetVectorSize(1);
  auto rows = MustDrain(op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_LE(scan_ptr->stats().rows_emitted, 2u);
}

TEST(ExecChunkTest, HashJoinLastPartialChunk) {
  // 7 probe rows x 1-2 matches each at chunk sizes that never divide the
  // match count evenly: emission crosses probe-chunk and output-chunk
  // boundaries, and the last chunk is partial.
  std::vector<Row> left;
  for (int i = 0; i < 7; ++i) {
    left.push_back({Value::Int(i % 3), Value::Int(i)});
  }
  std::vector<Row> right = {{Value::Int(0), Value::Int(100)},
                            {Value::Int(1), Value::Int(101)},
                            {Value::Int(1), Value::Int(111)},
                            {Value::Int(9), Value::Int(109)}};
  std::vector<Row> want;
  for (const Row& l : left) {
    for (const Row& r : right) {
      if (l[0].AsInt() == r[0].AsInt()) {
        want.push_back({l[0], l[1], r[0], r[1]});
      }
    }
  }
  for (size_t vs : kSizes) {
    HashJoinOp join(Rows(TwoCols("l", "k", "v"), left),
                    Rows(TwoCols("r", "k", "v"), right), Keys(0), Keys(0),
                    JoinType::kInner);
    ExpectSameRows(DrainAt(join, vs), want, vs);
  }
}

TEST(ExecChunkTest, LeftJoinNullPadsAcrossChunkBoundaries) {
  std::vector<Row> left;
  for (int i = 0; i < 7; ++i) left.push_back({Value::Int(i)});
  std::vector<Row> right = {{Value::Int(2)}, {Value::Int(5)}};
  for (size_t vs : kSizes) {
    HashJoinOp join(Rows(OneCol("l", "k"), left), Rows(OneCol("r", "k"), right),
                    Keys(0), Keys(0), JoinType::kLeft);
    auto rows = DrainAt(join, vs);
    ASSERT_EQ(rows.size(), 7u) << "vector_size=" << vs;
    for (const Row& row : rows) {
      const bool matched = row[0].AsInt() == 2 || row[0].AsInt() == 5;
      EXPECT_EQ(row[1].is_null(), !matched) << row[0].ToString();
    }
  }
}

TEST(ExecChunkTest, NestedLoopCrossProductPartialChunks) {
  // 5 x 3 cross product: neither side nor the 15-row output divides evenly
  // by chunk sizes 2 and 3.
  std::vector<Row> want;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) {
      want.push_back({Value::Int(i), Value::Int(10 + j)});
    }
  }
  std::vector<Row> right;
  for (int j = 0; j < 3; ++j) right.push_back({Value::Int(10 + j)});
  for (size_t vs : kSizes) {
    NestedLoopJoinOp join(Rows(OneCol("l", "a"), IntRows(5)),
                          Rows(OneCol("r", "b"), right), nullptr,
                          JoinType::kCross);
    ExpectSameRows(DrainAt(join, vs), want, vs);
  }
}

TEST(ExecChunkTest, HashAggLastPartialChunk) {
  // 10 rows, 3 groups, consumed in partial chunks; with no group keys the
  // empty input still emits exactly one row at every chunk size.
  for (size_t vs : kSizes) {
    std::vector<BoundExprPtr> groups;
    groups.push_back(OddPredicate(0));  // group by a % 2
    std::vector<AggSpec> aggs;
    aggs.push_back({AggFunc::kCountStar, nullptr});
    HashAggOp agg(Rows(OneCol("t", "a"), IntRows(10)), std::move(groups),
                  std::move(aggs), TwoCols("", "g", "n"));
    auto rows = DrainAt(agg, vs);
    ASSERT_EQ(rows.size(), 2u) << "vector_size=" << vs;
    int64_t total = 0;
    for (const Row& row : rows) total += row[1].AsInt();
    EXPECT_EQ(total, 10);

    std::vector<AggSpec> count_all;
    count_all.push_back({AggFunc::kCountStar, nullptr});
    HashAggOp global(Rows(OneCol("t", "a"), {}), {}, std::move(count_all),
                     OneCol("", "n"));
    auto grows = DrainAt(global, vs);
    ASSERT_EQ(grows.size(), 1u) << "vector_size=" << vs;
    EXPECT_EQ(grows[0][0].AsInt(), 0);
  }
}

TEST(ExecChunkTest, DistinctAcrossChunkBoundaries) {
  // Duplicates that straddle chunk boundaries at size 2/3; also a chunk
  // whose rows are all duplicates (selects zero) mid-stream.
  std::vector<Row> rows;
  for (int v : {1, 1, 2, 2, 2, 3, 1, 2, 3, 4}) rows.push_back({Value::Int(v)});
  std::vector<Row> want = {
      {Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}, {Value::Int(4)}};
  for (size_t vs : kSizes) {
    DistinctOp distinct(Rows(OneCol("t", "a"), rows));
    ExpectSameRows(DrainAt(distinct, vs), want, vs);
  }
}

TEST(ExecChunkTest, SortAndUnionEmitPartialLastChunks) {
  std::vector<Row> want_union;
  for (int i = 0; i < 7; ++i) want_union.push_back({Value::Int(i)});
  for (int i = 0; i < 4; ++i) want_union.push_back({Value::Int(100 + i)});
  for (size_t vs : kSizes) {
    std::vector<OperatorPtr> children;
    children.push_back(Rows(OneCol("t", "a"), IntRows(7)));
    std::vector<Row> second;
    for (int i = 0; i < 4; ++i) second.push_back({Value::Int(100 + i)});
    children.push_back(Rows(OneCol("t", "a"), second));
    UnionAllOp u(std::move(children));
    ExpectSameRows(DrainAt(u, vs), want_union, vs);

    std::vector<Row> reversed;
    for (int i = 6; i >= 0; --i) reversed.push_back({Value::Int(i)});
    std::vector<SortKey> keys;
    keys.push_back({BoundColumn(0), /*desc=*/false});
    SortOp sort(Rows(OneCol("t", "a"), reversed), std::move(keys));
    ExpectSameRows(DrainAt(sort, vs), IntRows(7), vs);
  }
}

TEST(ExecChunkTest, SetVectorSizeClampsDegenerateValues) {
  // 0 clamps to 1 (a zero chunk budget would emit empty chunks and spin);
  // a huge request clamps to kMaxVectorSize instead of allocating for it.
  for (size_t requested : {size_t{0}, size_t{1}, Operator::kMaxVectorSize * 16}) {
    FilterOp filter(Rows(OneCol("t", "a"), IntRows(12)), OddPredicate(0));
    EXPECT_EQ(DrainAt(filter, requested).size(), 6u)
        << "requested=" << requested;
  }
}

TEST(ExecChunkTest, StatsAreTupleGranularAtEveryVectorSize) {
  // The EXPLAIN ANALYZE contract: a full drain of n rows reports
  // rows_emitted=n and next_calls=n+1 regardless of chunk size, so the
  // seed's tuple-at-a-time goldens stay byte-identical under batching.
  for (size_t vs : kSizes) {
    auto scan = Rows(OneCol("t", "a"), IntRows(12));
    Operator* scan_ptr = scan.get();
    FilterOp filter(std::move(scan), OddPredicate(0));
    filter.EnableStats(true);
    filter.SetVectorSize(vs);
    auto rows = MustDrain(filter);
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(scan_ptr->stats().rows_emitted, 12u) << "vector_size=" << vs;
    EXPECT_EQ(scan_ptr->stats().next_calls, 13u) << "vector_size=" << vs;
    EXPECT_EQ(filter.stats().rows_emitted, 6u) << "vector_size=" << vs;
    EXPECT_EQ(filter.stats().next_calls, 7u) << "vector_size=" << vs;
  }
}

TEST(ExecChunkTest, DataChunkAppendHelpers) {
  DataChunk chunk;
  chunk.Reset(2);
  chunk.AppendRow({Value::Int(1), Value::Text("a")});
  chunk.AppendRow({Value::Int(2), Value::Text("b")});
  chunk.AppendRow({Value::Int(3), Value::Text("c")});
  ASSERT_EQ(chunk.size(), 3u);

  SelectionVector sel = {0, 2};
  DataChunk picked;
  picked.Reset(2);
  picked.AppendSelected(chunk, sel);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked.column(0)[1].AsInt(), 3);

  DataChunk sliced;
  sliced.Reset(2);
  sliced.AppendRange(chunk, 1, 2);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced.column(0)[0].AsInt(), 2);

  // Concat with a null right side pads with NULLs (LEFT join emission).
  DataChunk padded;
  padded.Reset(3);
  padded.AppendConcat(chunk, 0, nullptr, 1);
  ASSERT_EQ(padded.size(), 1u);
  EXPECT_TRUE(padded.column(2)[0].is_null());

  Row row = chunk.MaterializeRow(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1].AsText(), "b");

  std::vector<Row> all;
  chunk.AppendRowsTo(&all);
  chunk.AppendRowsTo(&all);  // appends, never overwrites
  EXPECT_EQ(all.size(), 6u);
}

}  // namespace
}  // namespace bornsql::exec
