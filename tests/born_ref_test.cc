// Unit + property tests for the in-memory Born classifier (Eqs. 1, 8-11,
// Defs. 2.1-2.2).
#include "born/born_ref.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "tests/test_util.h"

namespace bornsql::born {
namespace {

Example Ex(std::vector<std::pair<std::string, double>> x, int64_t k,
           double weight = 1.0) {
  Example ex;
  ex.x = std::move(x);
  ex.y.emplace_back(Value::Int(k), 1.0);
  ex.sample_weight = weight;
  return ex;
}

// A tiny, fully hand-checkable corpus: two features, two classes.
std::vector<Example> TinyDataset() {
  return {
      Ex({{"f1", 1.0}}, 1),
      Ex({{"f2", 1.0}}, 2),
      Ex({{"f1", 1.0}, {"f2", 1.0}}, 1),
  };
}

TEST(BornRefTest, CorpusMatchesEquationOne) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  // Item 1: x={f1:1}, y={1:1}, |x||y|=1 -> P[f1][1] += 1.
  // Item 2: P[f2][2] += 1.
  // Item 3: |x||y| = 2 -> P[f1][1] += 0.5, P[f2][1] += 0.5.
  const auto& corpus = clf.corpus();
  EXPECT_DOUBLE_EQ(corpus.at("f1").at(Value::Int(1)), 1.5);
  EXPECT_DOUBLE_EQ(corpus.at("f2").at(Value::Int(1)), 0.5);
  EXPECT_DOUBLE_EQ(corpus.at("f2").at(Value::Int(2)), 1.0);
  EXPECT_EQ(clf.feature_count(), 2u);
  EXPECT_EQ(clf.class_count(), 2u);
  EXPECT_EQ(clf.corpus_entries(), 3u);
}

TEST(BornRefTest, SampleWeightScalesContribution) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit({Ex({{"f1", 1.0}}, 1, 3.0)}));
  EXPECT_DOUBLE_EQ(clf.corpus().at("f1").at(Value::Int(1)), 3.0);
}

TEST(BornRefTest, MultiLabelTargetsSplitMass) {
  Example ex;
  ex.x = {{"f1", 1.0}};
  ex.y = {{Value::Int(1), 1.0}, {Value::Int(2), 1.0}};
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit({ex}));
  // |x||y| = 1 * 2 = 2 -> each class gets 0.5.
  EXPECT_DOUBLE_EQ(clf.corpus().at("f1").at(Value::Int(1)), 0.5);
  EXPECT_DOUBLE_EQ(clf.corpus().at("f1").at(Value::Int(2)), 0.5);
}

TEST(BornRefTest, PredictsSeparableClasses) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit({
      Ex({{"cat", 2.0}, {"pet", 1.0}}, 1),
      Ex({{"dog", 2.0}, {"pet", 1.0}}, 2),
      Ex({{"cat", 1.0}}, 1),
      Ex({{"dog", 1.0}}, 2),
  }));
  auto p1 = clf.Predict({{"cat", 1.0}});
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  EXPECT_EQ(p1->AsInt(), 1);
  auto p2 = clf.Predict({{"dog", 3.0}, {"pet", 1.0}});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->AsInt(), 2);
}

TEST(BornRefTest, ProbabilitiesSumToOne) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  auto proba = clf.PredictProba({{"f1", 1.0}, {"f2", 2.0}});
  ASSERT_TRUE(proba.ok());
  double total = 0.0;
  for (const auto& [k, p] : *proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BornRefTest, UnknownFeaturesCannotClassify) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  auto p = clf.Predict({{"never-seen", 1.0}});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(BornRefTest, DeploymentDoesNotChangePredictions) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  FeatureVector x = {{"f1", 1.0}, {"f2", 0.5}};
  auto before = clf.PredictProba(x);
  ASSERT_TRUE(before.ok());
  BORNSQL_ASSERT_OK(clf.Deploy());
  EXPECT_TRUE(clf.deployed());
  auto after = clf.PredictProba(x);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_NEAR((*before)[i].second, (*after)[i].second, 1e-15);
  }
}

TEST(BornRefTest, SetParamsInvalidatesDeployment) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  BORNSQL_ASSERT_OK(clf.Deploy());
  clf.set_params({1.0, 0.5, 0.0});
  EXPECT_FALSE(clf.deployed());
}

TEST(BornRefTest, InvalidHyperparamsRejected) {
  BornClassifierRef bad_a({0.0, 1.0, 1.0});
  EXPECT_FALSE(bad_a.Fit(TinyDataset()).ok());
  BornClassifierRef bad_b({0.5, 1.5, 1.0});
  EXPECT_FALSE(bad_b.Fit(TinyDataset()).ok());
  BornClassifierRef bad_h({0.5, 1.0, -1.0});
  EXPECT_FALSE(bad_h.Fit(TinyDataset()).ok());
}

TEST(BornRefTest, NegativeFeatureWeightRejected) {
  BornClassifierRef clf;
  EXPECT_FALSE(clf.Fit({Ex({{"f1", -1.0}}, 1)}).ok());
}

TEST(BornRefTest, EmptyItemContributesNothing) {
  BornClassifierRef clf;
  Example empty;
  empty.y.emplace_back(Value::Int(1), 1.0);
  BORNSQL_ASSERT_OK(clf.Fit({empty}));
  EXPECT_EQ(clf.corpus_entries(), 0u);
}

TEST(BornRefTest, GlobalExplanationOrderedDescending) {
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  auto global = clf.ExplainGlobal(0);
  ASSERT_TRUE(global.ok());
  ASSERT_GE(global->size(), 2u);
  for (size_t i = 1; i < global->size(); ++i) {
    EXPECT_GE((*global)[i - 1].w, (*global)[i].w);
  }
}

TEST(BornRefTest, LocalExplanationSumsToUnnormalizedScore) {
  // The addends H_j^h W_jk^a x_j^a of Eq. (11) are exactly the local
  // explanation weights (§2.3): per class they must sum to u_k^a.
  BornClassifierRef clf;
  BORNSQL_ASSERT_OK(clf.Fit(TinyDataset()));
  FeatureVector x = {{"f1", 2.0}, {"f2", 1.0}};
  Example item;
  item.x = x;
  auto local = clf.ExplainLocal({item}, 0);
  ASSERT_TRUE(local.ok());
  // Recover u_k from probabilities: compare ratios instead of absolutes.
  auto proba = clf.PredictProba(x);
  ASSERT_TRUE(proba.ok());
  std::map<int64_t, double> sums;
  for (const auto& e : *local) sums[e.k.AsInt()] += e.w;
  const double a = clf.params().a;
  // z differs from x by the |x| normalization; both vectors are positive
  // multiples of each other here, so class ratios are preserved:
  // u_k(z)^a / u_k'(z)^a == u_k(x)^a / u_k'(x)^a.
  double lhs = sums[1] / sums[2];
  double rhs = std::pow((*proba)[0].second / (*proba)[1].second, a);
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

// ---- property tests: exact incremental learning and unlearning ----

struct PropertyParams {
  uint64_t seed;
  int n_items;
  int n_classes;
  int vocab;
};

class BornPropertyTest : public ::testing::TestWithParam<PropertyParams> {
 protected:
  std::vector<Example> RandomDataset(Rng& rng, const PropertyParams& p) {
    std::vector<Example> out;
    for (int i = 0; i < p.n_items; ++i) {
      Example ex;
      int n_features = 1 + static_cast<int>(rng.Uniform(6));
      for (int f = 0; f < n_features; ++f) {
        ex.x.emplace_back(StrFormat("f%zu", rng.Uniform(p.vocab)),
                          0.25 + rng.NextDouble() * 3.0);
      }
      ex.y.emplace_back(
          Value::Int(static_cast<int64_t>(rng.Uniform(p.n_classes))), 1.0);
      ex.sample_weight = 0.5 + rng.NextDouble();
      out.push_back(std::move(ex));
    }
    return out;
  }
};

TEST_P(BornPropertyTest, IncrementalEqualsBatch) {
  const PropertyParams p = GetParam();
  Rng rng(p.seed);
  std::vector<Example> data = RandomDataset(rng, p);

  BornClassifierRef batch;
  BORNSQL_ASSERT_OK(batch.Fit(data));

  BornClassifierRef incremental;
  size_t cut1 = data.size() / 3, cut2 = 2 * data.size() / 3;
  BORNSQL_ASSERT_OK(incremental.PartialFit(
      {data.begin(), data.begin() + cut1}));
  BORNSQL_ASSERT_OK(incremental.PartialFit(
      {data.begin() + cut1, data.begin() + cut2}));
  BORNSQL_ASSERT_OK(incremental.PartialFit({data.begin() + cut2, data.end()}));

  // Def. 2.1: the corpora must match entry-wise.
  ASSERT_EQ(batch.corpus_entries(), incremental.corpus_entries());
  for (const auto& [j, row] : batch.corpus()) {
    for (const auto& [k, w] : row) {
      EXPECT_NEAR(incremental.corpus().at(j).at(k), w, 1e-9 * (1 + std::abs(w)))
          << "feature " << j;
    }
  }
}

TEST_P(BornPropertyTest, UnlearningEqualsRetraining) {
  const PropertyParams p = GetParam();
  Rng rng(p.seed ^ 0xabcdef);
  std::vector<Example> data = RandomDataset(rng, p);

  // Forget every third item.
  std::vector<Example> keep, forget;
  for (size_t i = 0; i < data.size(); ++i) {
    (i % 3 == 0 ? forget : keep).push_back(data[i]);
  }

  BornClassifierRef unlearned;
  BORNSQL_ASSERT_OK(unlearned.Fit(data));
  BORNSQL_ASSERT_OK(unlearned.Unlearn(forget));

  BornClassifierRef retrained;
  BORNSQL_ASSERT_OK(retrained.Fit(keep));

  // Def. 2.2: predictions of the unlearned model equal a fresh retrain.
  for (int trial = 0; trial < 20; ++trial) {
    FeatureVector x = {
        {StrFormat("f%zu", rng.Uniform(p.vocab)), 1.0 + rng.NextDouble()},
        {StrFormat("f%zu", rng.Uniform(p.vocab)), 1.0 + rng.NextDouble()},
    };
    auto pu = unlearned.PredictProba(x);
    auto pr = retrained.PredictProba(x);
    ASSERT_TRUE(pu.ok() && pr.ok());
    ASSERT_EQ(pu->size(), pr->size());
    for (size_t i = 0; i < pu->size(); ++i) {
      EXPECT_EQ(Value::Compare((*pu)[i].first, (*pr)[i].first), 0);
      EXPECT_NEAR((*pu)[i].second, (*pr)[i].second, 1e-7);
    }
  }
}

TEST_P(BornPropertyTest, HyperparamsDoNotAffectTraining) {
  // §2.2.1: training is hyper-parameter free, so corpora trained under
  // different (a, b, h) are identical.
  const PropertyParams p = GetParam();
  Rng rng(p.seed ^ 0x5555);
  std::vector<Example> data = RandomDataset(rng, p);
  BornClassifierRef clf1({0.5, 1.0, 1.0});
  BornClassifierRef clf2({2.0, 0.25, 0.0});
  BORNSQL_ASSERT_OK(clf1.Fit(data));
  BORNSQL_ASSERT_OK(clf2.Fit(data));
  ASSERT_EQ(clf1.corpus_entries(), clf2.corpus_entries());
  for (const auto& [j, row] : clf1.corpus()) {
    for (const auto& [k, w] : row) {
      EXPECT_DOUBLE_EQ(clf2.corpus().at(j).at(k), w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, BornPropertyTest,
    ::testing::Values(PropertyParams{1, 30, 2, 10},
                      PropertyParams{2, 100, 3, 25},
                      PropertyParams{3, 200, 5, 40},
                      PropertyParams{4, 60, 2, 5},
                      PropertyParams{5, 150, 4, 80}));

}  // namespace
}  // namespace bornsql::born
