// Tests for the row store, unique keys, secondary indexes and catalog.
#include "storage/table.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "tests/test_util.h"

namespace bornsql::storage {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.Add(Column{"t", "a", ValueType::kInt});
  s.Add(Column{"t", "b", ValueType::kText});
  return s;
}

TEST(TableTest, InsertAndRead) {
  Table t("t", TwoColSchema(), {});
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("x")}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(2), Value::Text("y")}));
  ASSERT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.rows()[1][1].AsText(), "y");
}

TEST(TableTest, UniqueKeyRejectsDuplicates) {
  Table t("t", TwoColSchema(), {0});
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("x")}));
  auto st = t.Insert({Value::Int(1), Value::Text("other")});
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
}

TEST(TableTest, FindConflictLocatesRow) {
  Table t("t", TwoColSchema(), {0});
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(5), Value::Text("x")}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(9), Value::Text("y")}));
  EXPECT_EQ(t.FindConflict({Value::Int(9), Value::Null()}), 1u);
  EXPECT_EQ(t.FindConflict({Value::Int(7), Value::Null()}), Table::kNpos);
}

TEST(TableTest, CompositeKey) {
  Schema s;
  s.Add(Column{"t", "j", ValueType::kText});
  s.Add(Column{"t", "k", ValueType::kInt});
  Table t("t", s, {0, 1});
  BORNSQL_ASSERT_OK(t.Insert({Value::Text("f"), Value::Int(1)}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Text("f"), Value::Int(2)}));
  EXPECT_FALSE(t.Insert({Value::Text("f"), Value::Int(1)}).ok());
}

TEST(TableTest, UpdateRowMaintainsUniqueIndex) {
  Table t("t", TwoColSchema(), {0});
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("x")}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(2), Value::Text("y")}));
  // Moving row 0 onto key 2 must fail.
  EXPECT_FALSE(t.UpdateRow(0, {Value::Int(2), Value::Text("z")}).ok());
  // Moving to a fresh key succeeds and old key is freed.
  BORNSQL_ASSERT_OK(t.UpdateRow(0, {Value::Int(3), Value::Text("z")}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("fresh")}));
}

TEST(TableTest, DeleteRowsRebuildsIndex) {
  Table t("t", TwoColSchema(), {0});
  for (int i = 0; i < 5; ++i) {
    BORNSQL_ASSERT_OK(t.Insert({Value::Int(i), Value::Text("v")}));
  }
  std::vector<bool> flags = {true, false, true, false, true};
  EXPECT_EQ(t.DeleteRows(flags), 3u);
  EXPECT_EQ(t.row_count(), 2u);
  // Keys 0/2/4 are reusable again.
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(0), Value::Text("new")}));
  EXPECT_EQ(t.FindConflict({Value::Int(3), Value::Null()}), 1u);
}

TEST(TableTest, SetUniqueKeyOnExistingData) {
  Table t("t", TwoColSchema(), {});
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("x")}));
  BORNSQL_ASSERT_OK(t.Insert({Value::Int(1), Value::Text("y")}));
  // Duplicates present: declaring uniqueness on column 0 fails...
  EXPECT_FALSE(t.SetUniqueKey({0}).ok());
  // ...but (a, b) is unique.
  BORNSQL_ASSERT_OK(t.SetUniqueKey({0, 1}));
}

TEST(TableTest, SecondaryIndexLookup) {
  Table t("t", TwoColSchema(), {});
  for (int i = 0; i < 6; ++i) {
    t.AppendUnchecked({Value::Int(i % 2), Value::Text("v")});
  }
  size_t idx = t.AddSecondaryIndex({0});
  std::vector<size_t> hits;
  t.LookupIndex(idx, {Value::Int(0)}, &hits);
  EXPECT_EQ(hits.size(), 3u);
  hits.clear();
  t.LookupIndex(idx, {Value::Int(7)}, &hits);
  EXPECT_TRUE(hits.empty());
  // NULL keys never match.
  hits.clear();
  t.LookupIndex(idx, {Value::Null()}, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(TableTest, SecondaryIndexMaintainedByMutations) {
  Table t("t", TwoColSchema(), {});
  size_t idx = t.AddSecondaryIndex({0});
  t.AppendUnchecked({Value::Int(1), Value::Text("a")});
  t.AppendUnchecked({Value::Int(1), Value::Text("b")});
  BORNSQL_ASSERT_OK(t.UpdateRow(0, {Value::Int(2), Value::Text("a")}));
  std::vector<size_t> hits;
  t.LookupIndex(idx, {Value::Int(1)}, &hits);
  EXPECT_EQ(hits.size(), 1u);
  hits.clear();
  t.LookupIndex(idx, {Value::Int(2)}, &hits);
  EXPECT_EQ(hits.size(), 1u);
  // Delete and re-check.
  EXPECT_EQ(t.DeleteRows({false, true}), 1u);
  hits.clear();
  t.LookupIndex(idx, {Value::Int(1)}, &hits);
  EXPECT_TRUE(hits.empty());
}

TEST(TableTest, FindIndexOnIsOrderInsensitive) {
  Schema s;
  s.Add(Column{"t", "x", ValueType::kInt});
  s.Add(Column{"t", "y", ValueType::kInt});
  Table t("t", s, {});
  t.AddSecondaryIndex({1, 0});
  EXPECT_NE(t.FindIndexOn({0, 1}), Table::kNpos);
  EXPECT_EQ(t.FindIndexOn({0}), Table::kNpos);
}

TEST(CatalogTest, CreateGetDrop) {
  catalog::Catalog c;
  auto t = c.CreateTable("Foo", TwoColSchema(), {}, false);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(c.Exists("foo"));  // case-insensitive
  EXPECT_TRUE(c.GetTable("FOO").ok());
  EXPECT_FALSE(c.CreateTable("foo", TwoColSchema(), {}, false).ok());
  BORNSQL_ASSERT_OK(c.DropTable("Foo", false));
  EXPECT_FALSE(c.GetTable("foo").ok());
}

TEST(CatalogTest, TableNamesSorted) {
  catalog::Catalog c;
  ASSERT_TRUE(c.CreateTable("zeta", TwoColSchema(), {}, false).ok());
  ASSERT_TRUE(c.CreateTable("alpha", TwoColSchema(), {}, false).ok());
  auto names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(CatalogTest, EstimateBytesGrowsWithData) {
  catalog::Catalog c;
  auto t = c.CreateTable("t", TwoColSchema(), {}, false);
  ASSERT_TRUE(t.ok());
  size_t before = c.EstimateBytes();
  for (int i = 0; i < 100; ++i) {
    (*t)->AppendUnchecked({Value::Int(i), Value::Text("payload string")});
  }
  EXPECT_GT(c.EstimateBytes(), before);
}

}  // namespace
}  // namespace bornsql::storage
