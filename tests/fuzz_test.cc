// Differential fuzzing harness tests: the generator is deterministic and
// produces parseable SQL, the shrinker converges to a minimal failing
// spec against a fake oracle, and -- the regression bar -- a fixed-seed
// batch of generated queries replays through the full differential runner
// (30 configurations, verifiers armed) with zero divergences.
#include "tools/fuzz/fuzzer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "tests/test_util.h"

namespace bornsql::fuzz {
namespace {

TEST(FuzzGeneratorTest, SameSeedSameQuery) {
  for (uint64_t i = 0; i < 50; ++i) {
    Rng a(DeriveSeed(123, i));
    Rng b(DeriveSeed(123, i));
    EXPECT_EQ(RenderQuery(GenerateQuery(a)), RenderQuery(GenerateQuery(b)));
  }
}

TEST(FuzzGeneratorTest, DifferentIndexesGiveDifferentQueries) {
  std::set<std::string> queries;
  for (uint64_t i = 0; i < 50; ++i) {
    Rng rng(DeriveSeed(123, i));
    queries.insert(RenderQuery(GenerateQuery(rng)));
  }
  // Grammar space is large; near-total distinctness is expected.
  EXPECT_GT(queries.size(), 45u);
}

TEST(FuzzGeneratorTest, DeriveSeedSeparatesNearbyInputs) {
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
  EXPECT_NE(DeriveSeed(0, 0), 0u);
}

TEST(FuzzGeneratorTest, GeneratedQueriesParseAndRunOnOneDatabase) {
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadFixture(&db));
  for (uint64_t i = 0; i < 50; ++i) {
    Rng rng(DeriveSeed(7, i));
    const std::string sql = RenderQuery(GenerateQuery(rng));
    auto result = db.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
  }
}

TEST(FuzzConfigTest, MatrixCoversStrategiesAndRules) {
  const std::vector<FuzzConfig> configs = AllConfigs();
  EXPECT_EQ(configs.size(), 30u);
  EXPECT_EQ(configs[0].name, "hash/all_on");  // the baseline
  std::set<std::string> names;
  for (const FuzzConfig& c : configs) names.insert(c.name);
  EXPECT_EQ(names.size(), configs.size());
  EXPECT_EQ(names.count("nestedloop/off_filter_reorder"), 1u);
  EXPECT_EQ(names.count("sortmerge/inline_ctes"), 1u);
  EXPECT_EQ(names.count("hash/all_off"), 1u);
  EXPECT_EQ(names.count("hash/vector1"), 1u);
  // The vector1 scalar-compat lanes survive a chunk-size override; every
  // other lane takes the overridden size.
  const std::vector<FuzzConfig> swept = AllConfigs(3);
  EXPECT_EQ(swept.size(), 30u);
  for (const FuzzConfig& c : swept) {
    const bool is_vec1 = c.name.find("/vector1") != std::string::npos;
    EXPECT_EQ(c.config.vector_size, is_vec1 ? 1u : 3u) << c.name;
  }
}

TEST(FuzzShrinkTest, ShrinksToAMinimalFailingSpec) {
  // Fake oracle: the query "fails" whenever its WHERE clause still
  // mentions t0.b. Everything else must be stripped.
  QuerySpec spec;
  spec.cte_sqls.push_back("c0 AS (SELECT 1 AS s0)");
  spec.distinct = true;
  spec.select_items = {"t0.a AS c0", "t0.b AS c1"};
  spec.from.push_back({"docs t0", "t0", false, ""});
  spec.where = {"t0.a > 1", "t0.b < 5", "t0.c = 2"};
  spec.having = "";
  spec.order_by = {"1"};

  auto still_fails = [](const QuerySpec& q) {
    for (const std::string& w : q.where) {
      if (w.find("t0.b") != std::string::npos) return true;
    }
    return false;
  };
  const QuerySpec shrunk = Shrink(spec, still_fails);
  EXPECT_EQ(shrunk.where, (std::vector<std::string>{"t0.b < 5"}));
  EXPECT_TRUE(shrunk.order_by.empty());
  EXPECT_FALSE(shrunk.distinct);
  EXPECT_TRUE(shrunk.cte_sqls.empty());
  EXPECT_EQ(shrunk.select_items.size(), 1u);
}

TEST(FuzzShrinkTest, NeverAcceptsAPassingReduction) {
  QuerySpec spec;
  spec.select_items = {"t0.a AS c0"};
  spec.from.push_back({"docs t0", "t0", false, ""});
  spec.where = {"t0.a > 1", "t0.b < 5"};
  // Oracle: fails only with BOTH conjuncts present.
  auto still_fails = [](const QuerySpec& q) { return q.where.size() >= 2; };
  const QuerySpec shrunk = Shrink(spec, still_fails);
  EXPECT_EQ(shrunk.where.size(), 2u);
}

// The regression bar: a fixed-seed batch through the full differential
// matrix. Any optimizer or join-strategy miscompilation that this grammar
// can express fails here with a shrunk counterexample in the message.
TEST(FuzzDifferentialTest, FixedSeedBatchHasNoDivergence) {
  RunOptions opts;
  opts.seed = 20260806;
  opts.queries = 200;
  const RunReport report = RunDifferential(opts);
  EXPECT_EQ(report.executed, 200u);
  EXPECT_FALSE(report.diverged)
      << "query " << report.divergent_index << ":\n"
      << report.divergent_query << "\n"
      << report.detail;
}

}  // namespace
}  // namespace bornsql::fuzz
