// Robustness tests: malformed SQL must produce a clean error Status (never
// a crash), and the planner's optimizations must be visible in EXPLAIN
// plans (pinning pushdown / join selection / CTE behaviour).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;

TEST(ParserRobustnessTest, MalformedStatementsErrorCleanly) {
  const char* bad[] = {
      "",
      ";;;",
      "SELEC 1",
      "SELECT",
      "SELECT FROM t",
      "SELECT * FROM",
      "SELECT * FROM t WHERE",
      "SELECT * FROM t GROUP",
      "SELECT * FROM t ORDER BY",
      "SELECT (1 + ) FROM t",
      "SELECT 1 +",
      "SELECT ((1)",
      "SELECT 'unterminated",
      "SELECT \"unterminated",
      "SELECT /* unterminated",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "CREATE TABLE t (a INTEGER",
      "CREATE TABLE t (PRIMARY KEY)",
      "INSERT INTO",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES (1",
      "INSERT INTO t VALUES (1) ON CONFLICT",
      "INSERT INTO t VALUES (1) ON CONFLICT (a) DO",
      "UPDATE t",
      "UPDATE t SET",
      "UPDATE t SET a",
      "DELETE t",
      "DROP t",
      "WITH x SELECT 1",
      "WITH x AS SELECT 1",
      "SELECT 1 UNION SELECT 2",
      "SELECT a FROM t JOIN u",
      "SELECT CASE END",
      "SELECT CAST(1)",
      "SELECT COUNT(*,*)",
      "SELECT 1 LIMIT",
      "EXPLAIN",
      "SELECT @ FROM t",
      "SELECT # FROM t",
      "SELECT a FROM (SELECT 1)",  // derived table without alias
  };
  for (const char* sql : bad) {
    auto result = sql::ParseStatement(sql);
    EXPECT_FALSE(result.ok()) << "should not parse: " << sql;
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << sql;
    }
  }
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  // Random token sequences: parsing must terminate with OK or ParseError,
  // never crash or hang.
  const char* tokens[] = {"SELECT", "FROM",  "WHERE", "(",    ")",   ",",
                          "*",      "t",     "a",     "1",    "'s'", "+",
                          "=",      "GROUP", "BY",    "JOIN", "ON",  ";",
                          "AND",    "IN",    "NULL",  "CASE", "END", "||"};
  Rng rng(12345);
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    int len = 1 + static_cast<int>(rng.Uniform(12));
    for (int i = 0; i < len; ++i) {
      sql += tokens[rng.Uniform(std::size(tokens))];
      sql += ' ';
    }
    auto result = sql::ParseStatement(sql);
    (void)result;  // either outcome is fine; surviving is the test
  }
}

TEST(EngineRobustnessTest, RuntimeErrorsAreStatuses) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE t (a INTEGER, s TEXT); INSERT INTO t VALUES (1, 'x')"));
  const char* bad[] = {
      "SELECT nope FROM t",
      "SELECT a FROM missing",
      "SELECT t.a FROM t AS other",
      "SELECT s + 1 FROM t",          // text arithmetic
      "SELECT SUM(s) FROM t",         // SUM over text
      "SELECT NOSUCHFUNC(a) FROM t",
      "SELECT POW(a) FROM t",         // wrong arity
      "SELECT a FROM t GROUP BY a HAVING b > 0",
      "SELECT a, SUM(a) FROM t",      // a not grouped
      "INSERT INTO t VALUES (1)",     // arity mismatch
      "SELECT CAST('xyz' AS INTEGER) FROM t",
  };
  for (const char* sql : bad) {
    auto result = db.Execute(sql);
    EXPECT_FALSE(result.ok()) << "should fail: " << sql;
  }
  // The database is still usable after every failure.
  auto ok = MustQuery(db, "SELECT a FROM t");
  EXPECT_EQ(ok.rows.size(), 1u);
}

class PlanShapeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE big (k INTEGER, v INTEGER);"
        "CREATE TABLE small (k INTEGER);"
        "INSERT INTO big VALUES (1, 10), (2, 20), (3, 30);"
        "INSERT INTO small VALUES (1)"));
  }
  std::string Plan(const std::string& sql) {
    auto r = MustQuery(db_, "EXPLAIN " + sql);
    std::string out;
    for (const Row& row : r.rows) out += row[0].AsText() + "\n";
    return out;
  }
  Database db_;
};

TEST_F(PlanShapeTest, SingleTablePredicatePushesBelowJoin) {
  std::string plan = Plan(
      "SELECT big.v FROM big, small WHERE big.k = small.k AND big.v > 15");
  // The v > 15 filter must sit under the join (directly above the scan),
  // not above it.
  size_t join = plan.find("Join");
  size_t filter = plan.find("Filter");
  ASSERT_NE(join, std::string::npos) << plan;
  ASSERT_NE(filter, std::string::npos) << plan;
  EXPECT_GT(filter, join) << "filter should be below (after) the join node:\n"
                          << plan;
}

TEST_F(PlanShapeTest, EquiJoinIsNotNestedLoop) {
  std::string plan =
      Plan("SELECT 1 FROM big, small WHERE big.k = small.k");
  EXPECT_EQ(plan.find("NestedLoopJoin"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, CrossJoinIsNestedLoop) {
  std::string plan = Plan("SELECT 1 FROM big, small");
  EXPECT_NE(plan.find("NestedLoopJoin(cross)"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, SortMergeConfigChangesJoinOperator) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kSortMerge;
  Database db{config};
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE a (k INTEGER); CREATE TABLE b (k INTEGER)"));
  auto r = MustQuery(db, "EXPLAIN SELECT 1 FROM a, b WHERE a.k = b.k");
  std::string plan;
  for (const Row& row : r.rows) plan += row[0].AsText() + "\n";
  EXPECT_NE(plan.find("SortMergeJoin"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, LimitSitsAtTheTop) {
  std::string plan = Plan("SELECT v FROM big ORDER BY v LIMIT 2");
  EXPECT_EQ(plan.rfind("Limit", 0), 0u) << plan;
  EXPECT_NE(plan.find("Sort"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, AggregatePlanHasHashAggregate) {
  std::string plan = Plan("SELECT k, SUM(v) FROM big GROUP BY k");
  EXPECT_NE(plan.find("HashAggregate(1 group keys, 1 aggregates)"),
            std::string::npos)
      << plan;
}

TEST_F(PlanShapeTest, CteSharedAcrossReferences) {
  std::string plan = Plan(
      "WITH c AS (SELECT k FROM big) "
      "SELECT 1 FROM c AS x, c AS y WHERE x.k = y.k");
  // Both references show as CteScan over the same (to-be-)materialized cell.
  size_t first = plan.find("CteScan");
  ASSERT_NE(first, std::string::npos) << plan;
  EXPECT_NE(plan.find("CteScan", first + 1), std::string::npos) << plan;
}

}  // namespace
}  // namespace bornsql::engine
