// Tests for the debug lock-hierarchy checker (common/tracked_mutex.h):
// rank registration and the hierarchy snapshot, lock-order-inversion and
// recursive-acquisition detection (as death tests against the default
// aborting handler, and field-by-field against a capturing handler), the
// same-rank nesting opt-in used by the memory-tracker tree walk, and
// AssertHeld. Every test skips in builds that compile the tracking out
// (release builds wrap raw std::mutex and cannot observe violations).
//
// Lock names here are test-local ("test.*"): the registry is process-wide
// and name->rank bindings are permanent, so each test uses its own names
// to stay independent of execution order.
#include "common/tracked_mutex.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/memory.h"

namespace bornsql {
namespace {

using lock_debug::HierarchySnapshot;
using lock_debug::LockInfo;
using lock_debug::SetViolationHandler;
using lock_debug::Violation;

const LockInfo* FindLock(const std::vector<LockInfo>& rows,
                         const std::string& name) {
  for (const LockInfo& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

// Captures violations instead of aborting; the acquisition then proceeds,
// so tests can inspect the report and still unwind their guards cleanly.
std::vector<Violation> g_captured;
void CaptureViolation(const Violation& v) { g_captured.push_back(v); }

class CaptureHandlerScope {
 public:
  CaptureHandlerScope() : previous_(SetViolationHandler(&CaptureViolation)) {
    g_captured.clear();
  }
  ~CaptureHandlerScope() { SetViolationHandler(previous_); }

 private:
  lock_debug::ViolationHandler previous_;
};

TEST(LockHierarchyTest, RegistrationAppearsInSnapshotWithCounts) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex a{"test.registration.a", 910};
  TrackedMutex b{"test.registration.b", 905, TrackedMutex::kNestsSameRank};

  const std::vector<LockInfo> rows = HierarchySnapshot();
  const LockInfo* info_a = FindLock(rows, "test.registration.a");
  const LockInfo* info_b = FindLock(rows, "test.registration.b");
  ASSERT_NE(info_a, nullptr);
  ASSERT_NE(info_b, nullptr);
  EXPECT_EQ(info_a->rank, 910);
  EXPECT_FALSE(info_a->nests_same_rank);
  EXPECT_EQ(info_b->rank, 905);
  EXPECT_TRUE(info_b->nests_same_rank);

  const uint64_t before = info_a->acquisitions;
  {
    MutexLock lock(&a);
  }
  {
    MutexLock lock(&a);
  }
  const std::vector<LockInfo> rows_after = HierarchySnapshot();
  const LockInfo* after = FindLock(rows_after, "test.registration.a");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->acquisitions, before + 2);
}

TEST(LockHierarchyTest, SnapshotIsNameSorted) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex z{"test.sorted.z", 901};
  TrackedMutex a{"test.sorted.a", 902};
  std::vector<LockInfo> rows = HierarchySnapshot();
  ASSERT_GE(rows.size(), 2u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].name, rows[i].name);
  }
}

TEST(LockHierarchyTest, DescendingRankOrderIsAllowed) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex outer{"test.order.outer", 920};
  TrackedMutex inner{"test.order.inner", 915};
  CaptureHandlerScope scope;
  {
    MutexLock hold_outer(&outer);
    MutexLock hold_inner(&inner);
  }
  // Re-acquiring in the same order after release is equally fine.
  {
    MutexLock hold_outer(&outer);
    MutexLock hold_inner(&inner);
  }
  EXPECT_TRUE(g_captured.empty());
}

TEST(LockHierarchyDeathTest, RankInversionAborts) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex high{"test.inversion.high", 930};
  TrackedMutex low{"test.inversion.low", 925};
  // A -> B is the declared order (ranks strictly decrease); B -> A from
  // any thread is the inversion that could deadlock against an A -> B
  // thread. The report must name both locks.
  EXPECT_DEATH(
      {
        MutexLock hold_low(&low);
        MutexLock hold_high(&high);
      },
      "lock-order inversion.*test\\.inversion\\.high.*"
      "test\\.inversion\\.low");
}

TEST(LockHierarchyDeathTest, RecursiveAcquisitionAborts) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex mu{"test.recursive", 935};
  // Relocking the same instance self-deadlocks std::mutex; the checker
  // must refuse before blocking, or the death test would hang instead.
  EXPECT_DEATH(
      {
        MutexLock first(&mu);
        MutexLock second(&mu);
      },
      "self-deadlock.*test\\.recursive");
}

TEST(LockHierarchyDeathTest, AssertHeldAbortsWhenNotHeld) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex mu{"test.assert_held", 940};
  {
    MutexLock lock(&mu);
    mu.AssertHeld();  // held: must not abort
  }
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld.*test\\.assert_held");
}

TEST(LockHierarchyDeathTest, AssertHeldAbortsFromOtherThread) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex mu{"test.assert_held_other", 941};
  // Held by this thread is not held by that thread: the per-thread stack
  // must not leak across threads.
  EXPECT_DEATH(
      {
        MutexLock lock(&mu);
        std::thread other([&mu] { mu.AssertHeld(); });
        other.join();
      },
      "AssertHeld.*test\\.assert_held_other");
}

TEST(LockHierarchyTest, InversionReportCarriesBothLocksAndRanks) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex high{"test.report.high", 950};
  TrackedMutex low{"test.report.low", 945};
  CaptureHandlerScope scope;
  {
    MutexLock hold_low(&low);
    MutexLock hold_high(&high);  // inversion: captured, then proceeds
  }
  ASSERT_EQ(g_captured.size(), 1u);
  const Violation& v = g_captured[0];
  EXPECT_EQ(v.kind, Violation::Kind::kRankInversion);
  EXPECT_EQ(v.acquiring, &high);
  EXPECT_EQ(v.held, &low);
  EXPECT_EQ(v.acquiring_rank, 950);
  EXPECT_EQ(v.held_rank, 945);
  // The message is the full human-facing report: both names, both ranks,
  // and (where backtrace(3) exists) both acquisition stacks.
  EXPECT_NE(v.message.find("test.report.high"), std::string::npos)
      << v.message;
  EXPECT_NE(v.message.find("test.report.low"), std::string::npos)
      << v.message;
  EXPECT_NE(v.message.find("950"), std::string::npos) << v.message;
  EXPECT_NE(v.message.find("945"), std::string::npos) << v.message;
}

TEST(LockHierarchyTest, EqualRankRequiresNestingOptInOnBothLocks) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedMutex nest_a{"test.nest.a", 955, TrackedMutex::kNestsSameRank};
  TrackedMutex nest_b{"test.nest.b", 955, TrackedMutex::kNestsSameRank};
  TrackedMutex plain{"test.nest.plain", 955};
  CaptureHandlerScope scope;
  {
    // Both ends opt in (the memory-tracker parent->child walk): allowed.
    MutexLock hold_a(&nest_a);
    MutexLock hold_b(&nest_b);
  }
  EXPECT_TRUE(g_captured.empty());
  {
    // Same rank without the flag on the acquired lock: an inversion (two
    // threads nesting in opposite orders would deadlock).
    MutexLock hold_a(&nest_a);
    MutexLock hold_plain(&plain);
  }
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0].kind, Violation::Kind::kRankInversion);
}

TEST(LockHierarchyTest, AscendingAcquisitionIsReportedEvenWhenDisjoint) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  // The rule is against the *lowest* held rank, not the most recent: with
  // 965 and 960 held, acquiring 962 violates (a 960-holder may climb to
  // 962 in another thread).
  TrackedMutex top{"test.lowest.top", 965};
  TrackedMutex bottom{"test.lowest.bottom", 960};
  TrackedMutex middle{"test.lowest.middle", 962};
  CaptureHandlerScope scope;
  {
    MutexLock hold_top(&top);
    MutexLock hold_bottom(&bottom);
    MutexLock hold_middle(&middle);
  }
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0].acquiring_rank, 962);
  EXPECT_EQ(g_captured[0].held_rank, 960);
}

TEST(LockHierarchyTest, RankMismatchOnReRegistrationIsReported) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  CaptureHandlerScope scope;
  TrackedMutex first{"test.mismatch", 970};
  EXPECT_TRUE(g_captured.empty());
  TrackedMutex second{"test.mismatch", 975};  // same name, new rank
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0].kind, Violation::Kind::kRankMismatch);
  EXPECT_NE(g_captured[0].message.find("test.mismatch"), std::string::npos);
}

TEST(LockHierarchyTest, SharedMutexFollowsTheSameRankRules) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  TrackedSharedMutex outer{"test.shared.outer", 985};
  TrackedMutex inner{"test.shared.inner", 980};
  CaptureHandlerScope scope;
  {
    ReaderMutexLock read(&outer);
    MutexLock hold(&inner);  // descending: fine under a reader too
  }
  {
    WriterMutexLock write(&outer);
    MutexLock hold(&inner);
  }
  EXPECT_TRUE(g_captured.empty());
  {
    MutexLock hold(&inner);
    ReaderMutexLock read(&outer);  // ascending: reported for readers too
  }
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0].kind, Violation::Kind::kRankInversion);
}

TEST(LockHierarchyTest, ReleaseOutOfOrderIsTracked) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  // Releasing the outer lock before the inner is legal (no deadlock
  // potential); the held-stack bookkeeping must handle middle removals so
  // later acquisitions still compare against the true lowest held rank.
  TrackedMutex a{"test.release.a", 995};
  TrackedMutex b{"test.release.b", 990};
  TrackedMutex c{"test.release.c", 992};
  CaptureHandlerScope scope;
  a.lock();
  b.lock();
  a.unlock();  // out-of-order release: only b (990) remains held
  c.lock();    // 992 > 990: still an inversion against the survivor
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0].held_rank, 990);
  c.unlock();
  b.unlock();
}

TEST(LockHierarchyTest, ProductionHierarchyRanksAreInDocumentedRange) {
  if (!kLockTrackingEnabled) GTEST_SKIP() << "lock tracking compiled out";
  // Constructing a MemoryTracker registers the lowest production lock;
  // whatever else this process registered must use the 0-900 range (the
  // tests above deliberately sit at 900+) so test ranks can never mask a
  // production inversion.
  obs::MemoryTracker anchor("anchor", "test", nullptr);
  for (const LockInfo& row : HierarchySnapshot()) {
    if (row.name.rfind("test.", 0) == 0) continue;
    EXPECT_GT(row.rank, 0) << row.name;
    EXPECT_LT(row.rank, 900) << row.name;
  }
}

}  // namespace
}  // namespace bornsql
