// Tests for the serving layer (src/serve/): sessions over a shared
// catalog, PREPARE / EXECUTE / DEALLOCATE with typed placeholders, the
// keyed plan cache (hits, invalidation by DDL and by per-session config),
// the serving system views, and a concurrent multi-session hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/plan_cache.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

using engine::QueryResult;
using serve::Server;
using serve::ServerConfig;
using serve::Session;

QueryResult MustExecute(Session& session, std::string_view sql) {
  auto result = session.Execute(sql);
  EXPECT_TRUE(result.ok()) << "statement failed: "
                           << result.status().ToString() << "\nsql: " << sql;
  if (!result.ok()) return QueryResult{};
  return std::move(result).value();
}

std::string MustFail(Session& session, std::string_view sql) {
  auto result = session.Execute(sql);
  EXPECT_FALSE(result.ok()) << "expected failure for: " << sql;
  return result.ok() ? std::string() : result.status().ToString();
}

// Server with the docs/scores-style fixture the predict queries use.
std::unique_ptr<Server> MakeServer() {
  auto server = std::make_unique<Server>();
  BORNSQL_EXPECT_OK(server->Bootstrap(
      "CREATE TABLE t (a INTEGER, b TEXT);"
      "INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w');"
      "CREATE TABLE s (a INTEGER, c INTEGER);"
      "INSERT INTO s VALUES (2,20),(3,30),(9,90);"));
  return server;
}

TEST(ServingSessionTest, PrepareExecuteNumberedPlaceholders) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  EXPECT_EQ(testing::RowStrings(MustExecute(*session, "EXECUTE p(2)")),
            std::vector<std::string>{"y"});
  EXPECT_EQ(testing::RowStrings(MustExecute(*session, "EXECUTE p(4)")),
            std::vector<std::string>{"w"});
}

TEST(ServingSessionTest, PrepareExecuteQuestionMarkPlaceholders) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session,
              "PREPARE q AS SELECT a FROM t WHERE b = ? OR a > ?");
  EXPECT_EQ(testing::RowStrings(MustExecute(*session, "EXECUTE q('x', 3)")),
            (std::vector<std::string>{"1", "4"}));
}

TEST(ServingSessionTest, PreparedDmlExecutes) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE ins AS INSERT INTO t VALUES ($1, $2)");
  EXPECT_EQ(MustExecute(*session, "EXECUTE ins(5, 'v')").rows_affected, 1u);
  MustExecute(*session, "PREPARE del AS DELETE FROM t WHERE a = $1");
  EXPECT_EQ(MustExecute(*session, "EXECUTE del(5)").rows_affected, 1u);
  EXPECT_EQ(
      MustExecute(*session, "SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 4);
}

TEST(ServingSessionTest, ExecuteArityMismatch) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  const std::string error = MustFail(*session, "EXECUTE p(1, 2)");
  EXPECT_NE(error.find("expects 1 parameter, got 2"), std::string::npos)
      << error;
}

TEST(ServingSessionTest, ExecuteTypeMismatchNamesParameterAndSpan) {
  auto server = MakeServer();
  auto session = server->Connect();
  // a INTEGER, so $1 is inferred INTEGER; a TEXT argument must fail with
  // the parameter's source span (line:column of the placeholder).
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  const std::string error = MustFail(*session, "EXECUTE p('not a number')");
  EXPECT_NE(error.find("parameter $1 of prepared statement 'p'"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("INTEGER"), std::string::npos) << error;
  EXPECT_NE(error.find("(at line 1:"), std::string::npos) << error;
}

TEST(ServingSessionTest, MixedPlaceholderStylesRejected) {
  auto server = MakeServer();
  auto session = server->Connect();
  const std::string error = MustFail(
      *session, "PREPARE p AS SELECT b FROM t WHERE a = ? OR a = $1");
  EXPECT_NE(error.find("cannot mix"), std::string::npos) << error;
}

TEST(ServingSessionTest, NumberedPlaceholderGapRejected) {
  auto server = MakeServer();
  auto session = server->Connect();
  const std::string error = MustFail(
      *session, "PREPARE p AS SELECT b FROM t WHERE a = $1 OR a = $3");
  EXPECT_NE(error.find("parameter $2 is never used"), std::string::npos)
      << error;
}

TEST(ServingSessionTest, RePrepareReplaces) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  MustExecute(*session, "PREPARE p AS SELECT a + 100 FROM t WHERE a = $1");
  EXPECT_EQ(testing::RowStrings(MustExecute(*session, "EXECUTE p(2)")),
            std::vector<std::string>{"102"});
}

TEST(ServingSessionTest, DeallocateAndMissingNameErrors) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT 1");
  MustExecute(*session, "DEALLOCATE p");
  EXPECT_NE(MustFail(*session, "EXECUTE p()")
                .find("prepared statement 'p' does not exist"),
            std::string::npos);
  EXPECT_NE(MustFail(*session, "DEALLOCATE nope")
                .find("prepared statement 'nope' does not exist"),
            std::string::npos);
  MustExecute(*session, "PREPARE a AS SELECT 1");
  MustExecute(*session, "PREPARE b AS SELECT 2");
  MustExecute(*session, "DEALLOCATE ALL");
  EXPECT_EQ(session->prepared_count(), 0u);
}

TEST(ServingSessionTest, BareDatabaseRejectsServingStatements) {
  engine::Database db;
  auto result = db.Execute("PREPARE p AS SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("serving session"),
            std::string::npos);
}

TEST(ServingCacheTest, RepeatedExecuteHitsCache) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  const auto first = testing::RowStrings(MustExecute(*session, "EXECUTE p(2)"));
  EXPECT_EQ(server->plan_cache().hits(), 0u);
  const uint64_t misses = server->plan_cache().misses();
  const auto second =
      testing::RowStrings(MustExecute(*session, "EXECUTE p(2)"));
  EXPECT_EQ(server->plan_cache().hits(), 1u);
  EXPECT_EQ(server->plan_cache().misses(), misses);
  EXPECT_EQ(first, second);
  // Different argument, same cached plan, different (correct) result.
  EXPECT_EQ(testing::RowStrings(MustExecute(*session, "EXECUTE p(3)")),
            std::vector<std::string>{"z"});
  EXPECT_EQ(server->plan_cache().hits(), 2u);
}

TEST(ServingCacheTest, AdHocSelectsAutoParameterizeAndShareEntries) {
  auto server = MakeServer();
  auto session = server->Connect();
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*session, "SELECT b FROM t WHERE a = 1")),
            std::vector<std::string>{"x"});
  // Same shape, different literal: must hit, and must NOT replay row 'x'.
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*session, "SELECT b FROM t WHERE a = 3")),
            std::vector<std::string>{"z"});
  EXPECT_EQ(server->plan_cache().hits(), 1u);
}

TEST(ServingCacheTest, PreparedAndAdHocShareOneEntry) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = ?");
  MustExecute(*session, "EXECUTE p(1)");  // miss, inserts
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*session, "SELECT b FROM t WHERE a = 2")),
            std::vector<std::string>{"y"});
  EXPECT_EQ(server->plan_cache().hits(), 1u);
  EXPECT_EQ(server->plan_cache().size(), 1u);
}

TEST(ServingCacheTest, OrderByOrdinalsDoNotCollide) {
  auto server = MakeServer();
  auto session = server->Connect();
  auto by_a = MustExecute(*session, "SELECT a, b FROM t ORDER BY 1");
  auto by_b = MustExecute(*session, "SELECT a, b FROM t ORDER BY 2");
  // Both normalize to "SELECT a, b FROM t ORDER BY ?" but the kept-literal
  // suffix keeps their keys distinct; the second must not reuse the first
  // plan's sort key.
  EXPECT_EQ(server->plan_cache().hits(), 0u);
  EXPECT_EQ(by_a.rows[0][0].AsInt(), 1);
  EXPECT_EQ(by_b.rows[0][1].AsText(), "w");
}

TEST(ServingCacheTest, DdlInvalidatesCache) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  EXPECT_GE(server->plan_cache().size(), 1u);
  MustExecute(*session, "CREATE TABLE other (x INTEGER)");
  EXPECT_EQ(server->plan_cache().size(), 0u);
  // Catalog version changed, so the re-run misses (no stale-plan reuse).
  const uint64_t hits = server->plan_cache().hits();
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  EXPECT_EQ(server->plan_cache().hits(), hits);
}

TEST(ServingCacheTest, DropAndRecreateServesFreshPlan) {
  auto server = MakeServer();
  auto session = server->Connect();
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*session, "SELECT b FROM t WHERE a = 1")),
            std::vector<std::string>{"x"});
  MustExecute(*session, "DROP TABLE t");
  MustExecute(*session, "CREATE TABLE t (a INTEGER, b TEXT)");
  MustExecute(*session, "INSERT INTO t VALUES (1,'fresh')");
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*session, "SELECT b FROM t WHERE a = 1")),
            std::vector<std::string>{"fresh"});
}

TEST(ServingCacheTest, OptimizerRuleChangeInvalidatesByFingerprint) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  MustExecute(*session, "SET born.opt.predicate_pushdown = 0");
  const uint64_t hits = server->plan_cache().hits();
  // Same text, new config fingerprint: must miss and re-optimize.
  MustExecute(*session, "SELECT b FROM t WHERE a = 2");
  EXPECT_EQ(server->plan_cache().hits(), hits);
  // Restoring the config restores the original key.
  MustExecute(*session, "SET born.opt.predicate_pushdown = 1");
  MustExecute(*session, "SELECT b FROM t WHERE a = 3");
  EXPECT_EQ(server->plan_cache().hits(), hits + 1);
}

TEST(ServingCacheTest, PerSessionConfigKeepsPlansApart) {
  auto server = MakeServer();
  auto s1 = server->Connect();
  auto s2 = server->Connect();
  MustExecute(*s2, "SET born.opt.predicate_pushdown = 0");
  MustExecute(*s1, "SELECT b FROM t WHERE a = 1");
  // s2 has a different fingerprint, so it must not reuse s1's plan...
  MustExecute(*s2, "SELECT b FROM t WHERE a = 1");
  EXPECT_EQ(server->plan_cache().hits(), 0u);
  // ...while a third session with default config shares s1's entry.
  auto s3 = server->Connect();
  MustExecute(*s3, "SELECT b FROM t WHERE a = 2");
  EXPECT_EQ(server->plan_cache().hits(), 1u);
}

TEST(ServingCacheTest, SetPlanCacheDisablesCaching) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "SET born.plan_cache = 0");
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  EXPECT_EQ(server->plan_cache().hits(), 0u);
  EXPECT_EQ(server->plan_cache().misses(), 0u);
  EXPECT_EQ(server->plan_cache().size(), 0u);
  MustExecute(*session, "SET born.plan_cache = 1");
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  EXPECT_EQ(server->plan_cache().hits(), 1u);
}

TEST(ServingCacheTest, CapacityKnobEvicts) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "SET born.plan_cache_capacity = 1");
  // LIMIT literals are ordinal-sensitive, so they stay inline and each
  // statement gets its own cache key (auto-parameterization would
  // otherwise collapse varying WHERE literals into one shared entry).
  for (int i = 0; i < 32; ++i) {
    MustExecute(*session,
                "SELECT a FROM t ORDER BY 1 LIMIT " + std::to_string(i + 1));
  }
  EXPECT_GT(server->plan_cache().evictions(), 0u);
  // Capacity 1 rounds up to 1 per shard; the cache stays tiny.
  EXPECT_LE(server->plan_cache().size(), 8u);
  EXPECT_NE(MustFail(*session, "SET born.plan_cache_capacity = 0")
                .find("must be >= 1"),
            std::string::npos);
}

TEST(ServingCacheTest, UnknownSettingDiagnosticListsServingKnobs) {
  auto server = MakeServer();
  auto session = server->Connect();
  const std::string error = MustFail(*session, "SET born.bogus = 1");
  EXPECT_NE(error.find("unknown setting 'born.bogus'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("born.plan_cache"), std::string::npos) << error;
  EXPECT_NE(error.find("born.opt.<rule>"), std::string::npos) << error;
  // And a bare engine database tells you the serving knobs need a session.
  engine::Database db;
  auto result = db.Execute("SET born.plan_cache = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("serving session"),
            std::string::npos);
}

TEST(ServingCacheTest, ParameterInLimitFallsBackUncached) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE l AS SELECT a FROM t ORDER BY a LIMIT $1");
  EXPECT_EQ(MustExecute(*session, "EXECUTE l(2)").rows.size(), 2u);
  EXPECT_EQ(MustExecute(*session, "EXECUTE l(3)").rows.size(), 3u);
  // The build was refused (LIMIT must const-evaluate), so nothing cached.
  EXPECT_EQ(server->plan_cache().size(), 0u);
  EXPECT_EQ(server->plan_cache().hits(), 0u);
}

TEST(ServingCacheTest, ExpressionSubqueriesAreNotCached) {
  auto server = MakeServer();
  auto session = server->Connect();
  // The planner folds expression subqueries at plan time; caching would
  // freeze the folded value. The serving layer must keep these uncached so
  // they observe data changes.
  EXPECT_EQ(MustExecute(*session, "SELECT (SELECT MAX(a) FROM t)")
                .rows[0][0]
                .AsInt(),
            4);
  MustExecute(*session, "INSERT INTO t VALUES (99, 'big')");
  EXPECT_EQ(MustExecute(*session, "SELECT (SELECT MAX(a) FROM t)")
                .rows[0][0]
                .AsInt(),
            99);
  EXPECT_EQ(server->plan_cache().size(), 0u);
}

TEST(ServingCacheTest, HitSkipsParsePlanPhasesInTrace) {
  auto server = MakeServer();
  auto session = server->Connect();
  engine::Database& db = session->database();
  MustExecute(*session, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  MustExecute(*session, "EXECUTE p(1)");  // miss: built + inserted
  // Keep only the last statement's trace, then run the hit.
  MustExecute(*session, "SET born.trace_capacity = 1");
  MustExecute(*session, "EXECUTE p(2)");  // hit
  const std::string trace = db.TraceJson();
  EXPECT_NE(trace.find("substitute"), std::string::npos) << trace;
  EXPECT_NE(trace.find("lower"), std::string::npos) << trace;
  EXPECT_NE(trace.find("execute"), std::string::npos) << trace;
  EXPECT_EQ(trace.find("bind+plan"), std::string::npos) << trace;
  EXPECT_EQ(trace.find("\"parse\""), std::string::npos) << trace;
  EXPECT_EQ(trace.find("\"lex\""), std::string::npos) << trace;
}

TEST(ServingViewsTest, PreparedSessionsAndPlanCacheViews) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "PREPARE predict AS SELECT b FROM t WHERE a = $1");
  MustExecute(*session, "EXECUTE predict(1)");
  MustExecute(*session, "EXECUTE predict(2)");

  auto prepared = MustExecute(
      *session,
      "SELECT name, params, calls FROM born_stat_prepared WHERE name = "
      "'predict'");
  ASSERT_EQ(prepared.rows.size(), 1u);
  EXPECT_EQ(prepared.rows[0][0].AsText(), "predict");
  EXPECT_EQ(prepared.rows[0][1].AsInt(), 1);
  EXPECT_EQ(prepared.rows[0][2].AsInt(), 2);

  auto sessions = MustExecute(
      *session, "SELECT session_id, prepared FROM born_stat_sessions");
  ASSERT_GE(sessions.rows.size(), 1u);

  auto cache = MustExecute(
      *session, "SELECT hits, misses, hit_rate FROM born_stat_plan_cache");
  ASSERT_EQ(cache.rows.size(), 1u);
  EXPECT_GE(cache.rows[0][0].AsInt(), 1);  // second EXECUTE hit
  EXPECT_GT(cache.rows[0][2].AsDouble(), 0.0);
}

TEST(ServingViewsTest, StatementStatsAttributePerSession) {
  auto server = MakeServer();
  auto s1 = server->Connect();
  auto s2 = server->Connect();
  MustExecute(*s1, "SELECT b FROM t WHERE a = 1");
  MustExecute(*s2, "SELECT b FROM t WHERE a = 2");
  auto snapshot = server->statement_stats().Snapshot();
  const std::string key1 =
      "s" + std::to_string(s1->id()) + ": SELECT b FROM t WHERE a = ?";
  const std::string key2 =
      "s" + std::to_string(s2->id()) + ": SELECT b FROM t WHERE a = ?";
  EXPECT_EQ(snapshot.count(key1), 1u) << "missing " << key1;
  EXPECT_EQ(snapshot.count(key2), 1u) << "missing " << key2;
  EXPECT_EQ(snapshot.at(key1).calls, 1u);
}

TEST(ServingViewsTest, MetricsCountersTrackCache) {
  auto server = MakeServer();
  auto session = server->Connect();
  MustExecute(*session, "SELECT b FROM t WHERE a = 1");
  MustExecute(*session, "SELECT b FROM t WHERE a = 2");
  EXPECT_EQ(server->metrics().counter("plan_cache_hits"), 1u);
  EXPECT_EQ(server->metrics().counter("plan_cache_misses"), 1u);
}

TEST(ServingSessionTest, SessionsShareTablesButNotPreparedStatements) {
  auto server = MakeServer();
  auto s1 = server->Connect();
  auto s2 = server->Connect();
  MustExecute(*s1, "PREPARE p AS SELECT b FROM t WHERE a = $1");
  EXPECT_NE(MustFail(*s2, "EXECUTE p(1)").find("does not exist"),
            std::string::npos);
  // s2 still sees DML applied through s1 (shared catalog).
  MustExecute(*s1, "INSERT INTO t VALUES (50, 'shared')");
  EXPECT_EQ(testing::RowStrings(
                MustExecute(*s2, "SELECT b FROM t WHERE a = 50")),
            std::vector<std::string>{"shared"});
}

// TSan-hammered in ci.sh: N sessions on N threads running the predict hot
// loop (hits), a rotating PREPARE namespace, per-session SET, and
// occasional DDL-driven invalidation, all against one server.
TEST(ServingConcurrencyTest, ConcurrentSessionsHammer) {
  auto server = MakeServer();
  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      auto session = server->Connect();
      const std::string pname = "p" + std::to_string(t);
      auto check = [&](auto&& result) {
        if (!result.ok()) failures.fetch_add(1);
        return std::forward<decltype(result)>(result);
      };
      check(session->Execute("PREPARE " + pname +
                             " AS SELECT b FROM t WHERE a = $1"));
      for (int i = 0; i < kIters; ++i) {
        auto result =
            check(session->Execute("EXECUTE " + pname + "(" +
                                   std::to_string(1 + (i % 4)) + ")"));
        if (result.ok() && result->rows.size() != 1) failures.fetch_add(1);
        check(session->Execute("SELECT a FROM t WHERE a = " +
                               std::to_string(1 + (i % 4))));
        if (i % 10 == 0) {
          check(session->Execute("SET born.opt.filter_reorder = " +
                                 std::to_string(i % 2)));
        }
        if (t == 0 && i % 16 == 7) {
          const std::string tmp = "tmp_" + std::to_string(i);
          check(session->Execute("CREATE TABLE " + tmp + " (x INTEGER)"));
          check(session->Execute("DROP TABLE " + tmp));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // The hot loop re-executes four distinct keys per thread: the cache must
  // have served a substantial share of them.
  EXPECT_GT(server->plan_cache().hits(), 0u);
}

}  // namespace
}  // namespace bornsql