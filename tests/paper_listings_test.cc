// Integration tests executing the paper's §3 SQL listings verbatim over a
// tiny hand-checkable database, verifying each intermediate tensor
// (XY_njk, XY_n, P_jk, W_jk, H_jk, HW_jk, HWX_nk, U_nk) against values
// computed by hand. This pins the engine to the exact semantics the paper
// assumes of PostgreSQL/MySQL/SQLite.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/database.h"
#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;

// Two items:
//   n=1: x = {f1: 2}, class 10
//   n=2: x = {f1: 1, f2: 1}, class 20
// Hand computation (w_n = 1):
//   item 1: |x||y| = 2      -> P[f1,10] += 2*1/2 = 1
//   item 2: |x||y| = 2      -> P[f1,20] += 0.5 ; P[f2,20] += 0.5
// Marginals: P_j(f1)=1.5, P_j(f2)=0.5 ; P_k(10)=1, P_k(20)=1.
// With a=1, b=1, h=1:
//   W = P/P_k:  W[f1,10]=1, W[f1,20]=0.5, W[f2,20]=0.5
//   W_j(f1)=1.5, W_j(f2)=0.5
//   H[f1,10]=2/3, H[f1,20]=1/3, H[f2,20]=1
//   H_j(f1) = 1 + (2/3 ln 2/3 + 1/3 ln 1/3)/ln 2 = 1 - 0.91830/ln2...
//           = 0.080793...
//   H_j(f2) = 1 + (1 ln 1)/ln 2 = 1
//   HW[f1,10] = H_j(f1)*1, HW[f1,20] = H_j(f1)*0.5, HW[f2,20] = 1*0.5
class PaperListingsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE X_nj (n INTEGER, j TEXT, w REAL);"
        "CREATE TABLE Y_nk (n INTEGER, k INTEGER, w REAL);"
        "CREATE TABLE W_n (n INTEGER, w REAL);"
        "INSERT INTO X_nj VALUES (1, 'f1', 2.0), (2, 'f1', 1.0), "
        "(2, 'f2', 1.0);"
        "INSERT INTO Y_nk VALUES (1, 10, 1.0), (2, 20, 1.0);"
        "INSERT INTO W_n VALUES (1, 1.0), (2, 1.0);"
        "CREATE TABLE params (model TEXT PRIMARY KEY, a REAL, b REAL, "
        "h REAL);"
        "INSERT INTO params VALUES ('m', 1.0, 1.0, 1.0)"));
  }

  // Runs a SELECT and returns a sorted key->value map of "col0|col1..." ->
  // last column as double.
  std::map<std::string, double> RunTensor(const std::string& sql) {
    auto result = MustQuery(db_, sql);
    std::map<std::string, double> out;
    for (const Row& row : result.rows) {
      std::string key;
      for (size_t c = 0; c + 1 < row.size(); ++c) {
        if (c > 0) key += "|";
        key += row[c].ToString();
      }
      out[key] = row.back().is_null() ? NAN : row.back().AsDouble();
    }
    return out;
  }

  Database db_;
};

constexpr const char* kXYnjk =
    "SELECT X_nj.n AS n, X_nj.j AS j, Y_nk.k AS k, X_nj.w * Y_nk.w AS w "
    "FROM X_nj, Y_nk WHERE X_nj.n = Y_nk.n";

TEST_F(PaperListingsTest, Listing16XYnjk) {
  auto t = RunTensor(kXYnjk);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at("1|f1|10"), 2.0);
  EXPECT_DOUBLE_EQ(t.at("2|f1|20"), 1.0);
  EXPECT_DOUBLE_EQ(t.at("2|f2|20"), 1.0);
}

TEST_F(PaperListingsTest, Listing17XYn) {
  std::string sql = std::string("WITH XY_njk AS (") + kXYnjk +
                    ") SELECT n, SUM(w) AS w FROM XY_njk GROUP BY n";
  auto t = RunTensor(sql);
  EXPECT_DOUBLE_EQ(t.at("1"), 2.0);
  EXPECT_DOUBLE_EQ(t.at("2"), 2.0);
}

std::string PjkSql() {
  return std::string("WITH XY_njk AS (") + kXYnjk +
         "), XY_n AS (SELECT n, SUM(w) AS w FROM XY_njk GROUP BY n) "
         "SELECT XY_njk.j AS j, XY_njk.k AS k, "
         "SUM(W_n.w * XY_njk.w / XY_n.w) AS w "
         "FROM XY_njk, XY_n, W_n "
         "WHERE XY_njk.n = XY_n.n AND XY_njk.n = W_n.n "
         "GROUP BY XY_njk.j, XY_njk.k";
}

TEST_F(PaperListingsTest, Listing18Pjk) {
  auto t = RunTensor(PjkSql());
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.at("f1|10"), 1.0);
  EXPECT_DOUBLE_EQ(t.at("f1|20"), 0.5);
  EXPECT_DOUBLE_EQ(t.at("f2|20"), 0.5);
}

// The deployment chain (listings 19-26) with a=b=h=1.
std::string WeightChain() {
  return std::string(
             "WITH ABH AS (SELECT a, b, h FROM params WHERE model = 'm'), "
             "P_jk AS (") +
         PjkSql() +
         "), "
         "P_j AS (SELECT j, SUM(w) AS w FROM P_jk GROUP BY j), "
         "P_k AS (SELECT k, SUM(w) AS w FROM P_jk GROUP BY k), "
         "KN AS (SELECT COUNT(*) AS n FROM P_k), "
         "W_jk AS (SELECT P_jk.j AS j, P_jk.k AS k, "
         "P_jk.w / (POW(P_k.w, b) * POW(P_j.w, 1 - b)) AS w "
         "FROM P_jk, P_j, P_k, ABH "
         "WHERE P_jk.j = P_j.j AND P_jk.k = P_k.k), "
         "W_j AS (SELECT j, SUM(w) AS w FROM W_jk GROUP BY j), "
         "H_jk AS (SELECT W_jk.j AS j, W_jk.k AS k, W_jk.w / W_j.w AS w "
         "FROM W_jk, W_j WHERE W_jk.j = W_j.j), "
         "H_j AS (SELECT H_jk.j AS j, "
         "1 + SUM(H_jk.w * LN(H_jk.w)) / LN(KN.n) AS w "
         "FROM H_jk, KN GROUP BY H_jk.j, KN.n), "
         "HW_jk AS (SELECT W_jk.j AS j, W_jk.k AS k, "
         "POW(H_j.w, h) * POW(W_jk.w, a) AS w "
         "FROM W_jk, H_j, ABH WHERE W_jk.j = H_j.j)";
}

TEST_F(PaperListingsTest, Listings20To22MarginalsAndW) {
  auto w = RunTensor(WeightChain() + " SELECT j, k, w FROM W_jk");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.at("f1|10"), 1.0);
  EXPECT_DOUBLE_EQ(w.at("f1|20"), 0.5);
  EXPECT_DOUBLE_EQ(w.at("f2|20"), 0.5);
}

TEST_F(PaperListingsTest, Listings24To25Entropy) {
  auto h = RunTensor(WeightChain() + " SELECT H_jk.j, H_jk.k, H_jk.w "
                                     "FROM H_jk");
  EXPECT_NEAR(h.at("f1|10"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.at("f1|20"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(h.at("f2|20"), 1.0, 1e-12);

  auto hj = RunTensor(WeightChain() + " SELECT j, w FROM H_j");
  double expected_f1 =
      1.0 + (2.0 / 3.0 * std::log(2.0 / 3.0) +
             1.0 / 3.0 * std::log(1.0 / 3.0)) /
                std::log(2.0);
  EXPECT_NEAR(hj.at("f1"), expected_f1, 1e-12);
  // H_jk(f2,20) = 1 exactly: ln(1) = 0 and H_j(f2) = 1 (a single-class
  // feature carries no entropy discount).
  EXPECT_NEAR(hj.at("f2"), 1.0, 1e-12);
}

TEST_F(PaperListingsTest, Listing27InferenceAndArgmax) {
  // Classify item 2 (x = {f1:1, f2:1}) with the chain weights.
  std::string sql =
      WeightChain() +
      ", HWX_nk AS (SELECT X_nj.n AS n, HW_jk.k AS k, "
      "SUM(HW_jk.w * POW(X_nj.w, a)) AS w "
      "FROM HW_jk, X_nj, ABH WHERE HW_jk.j = X_nj.j "
      "GROUP BY X_nj.n, HW_jk.k) "
      "SELECT R_nk.n, R_nk.k FROM (SELECT n, k, ROW_NUMBER() OVER("
      "PARTITION BY n ORDER BY w DESC, k) AS r FROM HWX_nk) AS R_nk "
      "WHERE R_nk.r = 1";
  auto result = MustQuery(db_, sql);
  std::map<int64_t, int64_t> pred;
  for (const Row& row : result.rows) pred[row[0].AsInt()] = row[1].AsInt();
  // Item 1 ({f1:2}): u_10 = H_j(f1)*1*2, u_20 = H_j(f1)*0.5*2 -> class 10.
  EXPECT_EQ(pred.at(1), 10);
  // Item 2 ({f1:1, f2:1}): u_10 = HW[f1,10] ~ 0.0808;
  // u_20 = HW[f1,20] + HW[f2,20] ~ 0.0404 + 0.5 -> class 20.
  EXPECT_EQ(pred.at(2), 20);
}

TEST_F(PaperListingsTest, Listings28To29Probabilities) {
  std::string sql =
      WeightChain() +
      ", HWX_nk AS (SELECT X_nj.n AS n, HW_jk.k AS k, "
      "SUM(HW_jk.w * POW(X_nj.w, a)) AS w "
      "FROM HW_jk, X_nj, ABH WHERE HW_jk.j = X_nj.j "
      "GROUP BY X_nj.n, HW_jk.k), "
      "U_nk AS (SELECT n, k, POW(HWX_nk.w, 1 / ABH.a) AS w "
      "FROM HWX_nk, ABH), "
      "U_n AS (SELECT n, SUM(w) AS w FROM U_nk GROUP BY n) "
      "SELECT U_nk.n, U_nk.k, U_nk.w / U_n.w AS p "
      "FROM U_nk, U_n WHERE U_nk.n = U_n.n";
  auto t = RunTensor(sql);
  // Item 1 sees only class-10 weights through f1... plus f1's class-20
  // weight: p(10) = 1/(1+0.5) = 2/3.
  EXPECT_NEAR(t.at("1|10"), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.at("1|20"), 1.0 / 3.0, 1e-12);
  // Probabilities per item sum to 1.
  EXPECT_NEAR(t.at("2|10") + t.at("2|20"), 1.0, 1e-12);
}

TEST_F(PaperListingsTest, Listings30To32LocalExplanation) {
  // z for items {1, 2}: z(f1) = 2/2 + 1/2 = 1.5 ; z(f2) = 1/2.
  std::string sql =
      "WITH X_n AS (SELECT X_nj.n AS n, SUM(X_nj.w) AS w FROM X_nj "
      "GROUP BY X_nj.n) "
      "SELECT X_nj.j, SUM(W_n.w * X_nj.w / X_n.w) AS w "
      "FROM X_nj, X_n, W_n WHERE X_nj.n = X_n.n AND X_nj.n = W_n.n "
      "GROUP BY X_nj.j";
  auto z = RunTensor(sql);
  EXPECT_DOUBLE_EQ(z.at("f1"), 1.5);
  EXPECT_DOUBLE_EQ(z.at("f2"), 0.5);
}

TEST_F(PaperListingsTest, IncrementalUpsertListing) {
  // The §3.2 corpus upsert, run twice: weights double.
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE m_corpus (j TEXT, k INTEGER, w REAL, "
      "PRIMARY KEY (j, k))"));
  std::string upsert =
      "INSERT INTO m_corpus (j, k, w) " + PjkSql() +
      " ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w";
  BORNSQL_ASSERT_OK(db_.ExecuteScript(upsert));
  BORNSQL_ASSERT_OK(db_.ExecuteScript(upsert));
  auto t = RunTensor("SELECT j, k, w FROM m_corpus");
  EXPECT_DOUBLE_EQ(t.at("f1|10"), 2.0);
  EXPECT_DOUBLE_EQ(t.at("f1|20"), 1.0);
  EXPECT_DOUBLE_EQ(t.at("f2|20"), 1.0);
}

}  // namespace
}  // namespace bornsql::engine
