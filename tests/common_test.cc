// Tests for the common utilities: Status/Result, strings, PRNG.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace bornsql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table 'x'");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: table 'x'");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = ParsePositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> UsesMacros(int x) {
  BORNSQL_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  BORNSQL_RETURN_IF_ERROR(doubled > 100 ? Status::InvalidArgument("too big")
                                        : Status::OK());
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagate) {
  EXPECT_EQ(*UsesMacros(3), 7);
  EXPECT_FALSE(UsesMacros(-3).ok());
  EXPECT_FALSE(UsesMacros(60).ok());
}

TEST(StringsTest, AsciiToLowerAndCaseCompare) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("X_nj", "x_NJ"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("\t\r\n "), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, SqlQuoteDoublesQuotes) {
  EXPECT_EQ(SqlQuote("it's"), "'it''s'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(4);
  std::map<size_t, int> counts;
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical({1.0, 3.0})];
  EXPECT_NEAR(counts[1] / 30000.0, 0.75, 0.02);
}

TEST(RngTest, PoissonMeanIsRight) {
  Rng rng(5);
  double total = 0;
  for (int i = 0; i < 20000; ++i) total += rng.Poisson(4.0);
  EXPECT_NEAR(total / 20000.0, 4.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(ZipfSamplerTest, RankOneDominates) {
  Rng rng(8);
  ZipfSampler zipf(100, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  // Everything stays in range.
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 100u);
}

TEST(ZipfSamplerTest, SingleElement) {
  Rng rng(9);
  ZipfSampler zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace bornsql
