// Frontend diagnostics: lexer/parser/binder errors carry line:column source
// spans, and the EXPLAIN VERIFY / EXPLAIN LINT parse forms round-trip.
#include <gtest/gtest.h>

#include "engine/database.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

// Count of "(at line" markers in an error message; binder recursion must
// attach exactly one span (the innermost failing expression's).
size_t SpanCount(const std::string& message) {
  size_t count = 0;
  for (size_t pos = message.find("(at line");
       pos != std::string::npos; pos = message.find("(at line", pos + 1)) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Lexer: token positions and error spans.

TEST(DiagnosticsTest, LexerStampsTokenLineAndColumn) {
  auto tokens = sql::Lex("SELECT\n  x,\n  y FROM t");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_EQ(t[0].line, 1u);  // SELECT
  EXPECT_EQ(t[0].column, 1u);
  EXPECT_EQ(t[1].line, 2u);  // x
  EXPECT_EQ(t[1].column, 3u);
  EXPECT_EQ(t[3].line, 3u);  // y
  EXPECT_EQ(t[3].column, 3u);
}

TEST(DiagnosticsTest, LexerErrorsCarryASpan) {
  auto tokens = sql::Lex("SELECT a,\n       @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("at line 2:8"), std::string::npos)
      << tokens.status().ToString();
}

// ---------------------------------------------------------------------------
// Parser: error spans and the EXPLAIN sub-forms.

TEST(DiagnosticsTest, ParserErrorsCarryASpan) {
  auto stmt = sql::ParseStatement("SELECT a FROM t WHERE\n");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError);
  EXPECT_EQ(SpanCount(stmt.status().message()), 1u)
      << stmt.status().ToString();
}

TEST(DiagnosticsTest, ParserErrorSpanPointsAtTheOffendingToken) {
  auto stmt = sql::ParseStatement("SELECT a,\nFROM t");
  ASSERT_FALSE(stmt.ok());
  // The select list is malformed where FROM appears: line 2, column 1.
  EXPECT_NE(stmt.status().message().find("at line 2:1"), std::string::npos)
      << stmt.status().ToString();
}

TEST(DiagnosticsTest, ExplainSubFormsSetDistinctFlags) {
  auto plain = sql::ParseStatement("EXPLAIN SELECT 1");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->explain_analyze);
  EXPECT_FALSE(plain->explain_verify);
  EXPECT_FALSE(plain->explain_lint);

  auto verify = sql::ParseStatement("EXPLAIN VERIFY SELECT 1");
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify->explain_verify);
  EXPECT_FALSE(verify->explain_lint);

  auto lint = sql::ParseStatement("EXPLAIN LINT SELECT 1");
  ASSERT_TRUE(lint.ok());
  EXPECT_TRUE(lint->explain_lint);
  EXPECT_FALSE(lint->explain_verify);
}

TEST(DiagnosticsTest, VerifyAndLintStayUsableAsIdentifiers) {
  // VERIFY/LINT are contextual after EXPLAIN, not reserved words.
  auto stmt = sql::ParseStatement("SELECT verify, lint FROM audit");
  BORNSQL_EXPECT_OK(stmt.status());
}

// ---------------------------------------------------------------------------
// Binder: golden error paths, each with the innermost expression's span.

class BinderDiagnosticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE t (a INTEGER, b TEXT);"
        "CREATE TABLE u (a INTEGER, c TEXT)"));
  }

  // Executes `sql`, asserts failure, returns the error message.
  std::string MustFail(std::string_view sql) {
    auto r = db_.Execute(sql);
    EXPECT_FALSE(r.ok()) << "expected failure: " << sql;
    return r.ok() ? std::string() : r.status().message();
  }

  engine::Database db_;
};

TEST_F(BinderDiagnosticsTest, UnresolvedColumn) {
  std::string message = MustFail("SELECT nope FROM t");
  EXPECT_NE(message.find("'nope' not found"), std::string::npos) << message;
  EXPECT_NE(message.find("(at line 1:8)"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, UnresolvedColumnOnALaterLine) {
  std::string message = MustFail("SELECT a\nFROM t\nWHERE missing = 1");
  EXPECT_NE(message.find("'missing' not found"), std::string::npos)
      << message;
  EXPECT_NE(message.find("(at line 3:7)"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, AmbiguousReference) {
  std::string message = MustFail("SELECT a FROM t, u WHERE t.a = u.a");
  EXPECT_NE(message.find("ambiguous"), std::string::npos) << message;
  EXPECT_NE(message.find("(at line 1:8)"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, FunctionArityMismatch) {
  std::string message = MustFail("SELECT pow(a) FROM t");
  EXPECT_NE(message.find("pow() called with 1 args"), std::string::npos)
      << message;
  EXPECT_NE(message.find("(at line 1:8)"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, UnknownFunction) {
  std::string message = MustFail("SELECT frobnicate(a) FROM t");
  EXPECT_NE(message.find("frobnicate"), std::string::npos) << message;
  EXPECT_NE(message.find("(at line"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, NestedFailureAttachesExactlyOneSpan) {
  // The dangling reference is three expression levels deep; the rewrapping
  // in BindExpr must tag the innermost frame only, not once per level.
  std::string message =
      MustFail("SELECT a FROM t WHERE lower(b) = lower(missing || 'x')");
  EXPECT_EQ(SpanCount(message), 1u) << message;
  EXPECT_NE(message.find("'missing' not found"), std::string::npos)
      << message;
  EXPECT_NE(message.find("(at line 1:40)"), std::string::npos) << message;
}

TEST_F(BinderDiagnosticsTest, DiagnosticsAreDeterministic) {
  // Two runs of the same failing statement produce byte-identical
  // messages (no pointer values, iteration-order artifacts, ...).
  EXPECT_EQ(MustFail("SELECT a, nope, b FROM t"),
            MustFail("SELECT a, nope, b FROM t"));
}

}  // namespace
}  // namespace bornsql
