#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace bornsql::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Hello, World! Foo-bar");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
}

TEST(TokenizerTest, DropsShortTokens) {
  auto tokens = Tokenize("a bc d ef");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "bc");
  EXPECT_EQ(tokens[1], "ef");
}

TEST(TokenizerTest, RemovesStopwords) {
  auto tokens = Tokenize("the cat sat on the mat");
  // "the" and "on" are stopwords; "cat"/"sat"/"mat" stay. "on" is length 2
  // and a stopword.
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "cat");
}

TEST(TokenizerTest, StopwordsKeptWhenDisabled) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  auto tokens = Tokenize("the cat", opts);
  EXPECT_EQ(tokens.size(), 2u);
}

TEST(TokenizerTest, StripsSimplePlurals) {
  auto tokens = Tokenize("models model classes");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "model");
  EXPECT_EQ(tokens[1], "model");
  // 'ss' endings are not stripped.
  EXPECT_EQ(tokens[2], "classe");  // "classes" -> strip one trailing 's'
}

TEST(TokenizerTest, NumbersAreTokens) {
  auto tokens = Tokenize("born 2022 classifier");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "2022");
}

TEST(TokenizerTest, VectorizeCounts) {
  auto counts = Vectorize("sample sampling sample variance sample");
  // "sample" x3 ("samples"? no), "sampling" x1, "variance" x1.
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].term, "sample");
  EXPECT_EQ(counts[0].count, 3);
  EXPECT_EQ(counts[1].term, "sampling");
  EXPECT_EQ(counts[1].count, 1);
}

TEST(TokenizerTest, VectorizeEmptyDocument) {
  EXPECT_TRUE(Vectorize("").empty());
  EXPECT_TRUE(Vectorize("  ,.;:!  ").empty());
}

TEST(TokenizerTest, IsStopword) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("with"));
  EXPECT_FALSE(IsStopword("robot"));
}

}  // namespace
}  // namespace bornsql::text
