// Tests for the §7/§2.2.1 extensions of BornSqlClassifier: external-data
// training and inference, scoring, and hyper-parameter tuning.
#include <gtest/gtest.h>

#include "born/born_ref.h"
#include "born/born_sql.h"
#include "common/rng.h"
#include "common/strings.h"
#include "tests/test_util.h"

namespace bornsql::born {
namespace {

using ::bornsql::testing::MustQuery;

Example Ex(std::vector<std::pair<std::string, double>> x, int64_t k,
           double weight = 1.0) {
  Example ex;
  ex.x = std::move(x);
  ex.y.emplace_back(Value::Int(k), 1.0);
  ex.sample_weight = weight;
  return ex;
}

std::vector<Example> RandomExamples(uint64_t seed, int n, int classes,
                                    int vocab) {
  Rng rng(seed);
  std::vector<Example> out;
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<std::string, double>> x;
    int features = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < features; ++f) {
      x.emplace_back(StrFormat("f%llu", rng.Uniform(vocab)),
                     0.5 + rng.NextDouble());
    }
    out.push_back(Ex(std::move(x),
                     static_cast<int64_t>(rng.Uniform(classes))));
  }
  return out;
}

// A SqlSource over in-database tables used only where in-db items are
// required (the external tests mostly bypass it).
SqlSource DummySource() {
  SqlSource source;
  source.x_parts = {"SELECT n, j, w FROM item_feature"};
  source.y = "SELECT n, k, 1.0 AS w FROM items";
  return source;
}

Status LoadExamples(engine::Database* db, const std::vector<Example>& data) {
  BORNSQL_RETURN_IF_ERROR(db->ExecuteScript(
      "DROP TABLE IF EXISTS items; DROP TABLE IF EXISTS item_feature;"
      "CREATE TABLE items (n INTEGER PRIMARY KEY, k INTEGER);"
      "CREATE TABLE item_feature (n INTEGER, j TEXT, w REAL)"));
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * items,
                           db->catalog().GetTable("items"));
  BORNSQL_ASSIGN_OR_RETURN(storage::Table * features,
                           db->catalog().GetTable("item_feature"));
  for (size_t i = 0; i < data.size(); ++i) {
    BORNSQL_RETURN_IF_ERROR(
        items->Insert({Value::Int(static_cast<int64_t>(i) + 1),
                       data[i].y[0].first}));
    for (const auto& [j, w] : data[i].x) {
      features->AppendUnchecked({Value::Int(static_cast<int64_t>(i) + 1),
                                 Value::Text(j), Value::Double(w)});
    }
  }
  return Status::OK();
}

TEST(BornExternalTest, ExternalFitMatchesInDatabaseFit) {
  std::vector<Example> data = RandomExamples(31, 80, 3, 12);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));

  // Model A trains through SQL over the loaded tables; model B receives the
  // same examples externally (§7): the corpora must agree.
  BornSqlClassifier in_db(&db, "indb", DummySource());
  BORNSQL_ASSERT_OK(in_db.Fit("SELECT n FROM items"));
  BornSqlClassifier external(&db, "ext", DummySource());
  BORNSQL_ASSERT_OK(external.PartialFitExternal(data));

  auto diff = MustQuery(
      db,
      "SELECT COUNT(*) FROM indb_corpus AS a, ext_corpus AS b "
      "WHERE a.j = b.j AND a.k = b.k AND ABS(a.w - b.w) > 1e-9");
  EXPECT_EQ(diff.rows[0][0].AsInt(), 0);
  auto ca = MustQuery(db, "SELECT COUNT(*) FROM indb_corpus");
  auto cb = MustQuery(db, "SELECT COUNT(*) FROM ext_corpus");
  EXPECT_EQ(ca.rows[0][0].AsInt(), cb.rows[0][0].AsInt());
}

TEST(BornExternalTest, ExternalUnlearnIsExact) {
  std::vector<Example> data = RandomExamples(32, 60, 2, 10);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));

  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.PartialFitExternal(data));
  BORNSQL_ASSERT_OK(clf.UnlearnExternal(data));
  auto residue = MustQuery(
      db, "SELECT COUNT(*) FROM m_corpus WHERE ABS(w) > 1e-9");
  EXPECT_EQ(residue.rows[0][0].AsInt(), 0);
}

TEST(BornExternalTest, PredictExternalMatchesReference) {
  std::vector<Example> data = RandomExamples(33, 100, 3, 10);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));

  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data));

  std::vector<FeatureVector> queries = {
      {{"f1", 1.0}, {"f2", 2.0}},
      {{"f3", 0.5}},
      {{"f0", 1.0}, {"f4", 1.0}, {"f7", 3.0}},
  };
  auto preds = clf.PredictExternal(queries);
  ASSERT_TRUE(preds.ok()) << preds.status().ToString();
  ASSERT_EQ(preds->size(), queries.size());
  for (const SqlPrediction& p : *preds) {
    auto want = ref.Predict(queries[static_cast<size_t>(p.n.AsInt())]);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(Value::Compare(p.k, *want), 0);
  }
  // The temporary table is cleaned up.
  EXPECT_FALSE(db.catalog().Exists("m_external_x"));
}

TEST(BornExternalTest, PredictExternalUsesDeployment) {
  std::vector<Example> data = RandomExamples(34, 60, 2, 8);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));
  auto before = clf.PredictExternal({{{"f1", 1.0}}});
  ASSERT_TRUE(before.ok());
  BORNSQL_ASSERT_OK(clf.Deploy());
  auto after = clf.PredictExternal({{{"f1", 1.0}}});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  if (!before->empty()) {
    EXPECT_EQ(Value::Compare((*before)[0].k, (*after)[0].k), 0);
  }
}

TEST(BornScoreTest, ScoreIsAccuracy) {
  // Perfectly separable data scores 1.0 on the training items.
  std::vector<Example> data;
  for (int i = 0; i < 20; ++i) {
    data.push_back(Ex({{i % 2 == 0 ? "even" : "odd", 1.0}}, i % 2));
  }
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));
  auto score = clf.Score("SELECT n FROM items");
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_DOUBLE_EQ(*score, 1.0);
}

TEST(BornScoreTest, TuneParamsPicksBestAndSetsIt) {
  std::vector<Example> data = RandomExamples(35, 120, 3, 10);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));

  const std::vector<Hyperparams> grid = {
      {0.5, 1.0, 1.0}, {1.0, 1.0, 0.0}, {2.0, 0.5, 1.0}};
  auto best = clf.TuneParams("SELECT n FROM items WHERE n <= 60", grid);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  // The returned params are installed on the classifier and in the params
  // table.
  EXPECT_DOUBLE_EQ(clf.params().a, best->a);
  auto row = MustQuery(db, "SELECT a, b, h FROM params WHERE model = 'm'");
  EXPECT_DOUBLE_EQ(row.rows[0][0].AsDouble(), best->a);
  // And it is at least as good as every other candidate.
  auto best_score = clf.Score("SELECT n FROM items WHERE n <= 60");
  ASSERT_TRUE(best_score.ok());
  for (const Hyperparams& hp : grid) {
    BORNSQL_ASSERT_OK(clf.SetParams(hp));
    auto s = clf.Score("SELECT n FROM items WHERE n <= 60");
    ASSERT_TRUE(s.ok());
    EXPECT_LE(*s, *best_score + 1e-12);
  }
}

TEST(BornDumpTest, DumpModelSqlRecreatesTheModel) {
  std::vector<Example> data = RandomExamples(36, 80, 3, 10);
  engine::Database db;
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));
  BORNSQL_ASSERT_OK(clf.Deploy());
  auto dump = clf.DumpModelSql();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();

  // Replay the dump into a fresh database and compare predictions via the
  // external path (the fresh db holds only the model tables).
  engine::Database fresh;
  BORNSQL_ASSERT_OK(fresh.ExecuteScript(*dump));
  BornSqlClassifier restored(&fresh, "m", DummySource());
  BORNSQL_ASSERT_OK(restored.AttachDeployment());

  std::vector<FeatureVector> queries;
  for (int i = 0; i < 10; ++i) queries.push_back(data[i].x);
  auto original = clf.PredictExternal(queries);
  auto replayed = restored.PredictExternal(queries);
  ASSERT_TRUE(original.ok() && replayed.ok());
  ASSERT_EQ(original->size(), replayed->size());
  for (size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ(Value::Compare((*original)[i].k, (*replayed)[i].k), 0);
  }
}

TEST(BornDumpTest, WeightsOnlyExportNeedsDeployment) {
  engine::Database db;
  std::vector<Example> data = RandomExamples(37, 20, 2, 6);
  BORNSQL_ASSERT_OK(LoadExamples(&db, data));
  BornSqlClassifier clf(&db, "m", DummySource());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items"));
  EXPECT_FALSE(clf.DumpModelSql(/*weights_only=*/true).ok());
  BORNSQL_ASSERT_OK(clf.Deploy());
  auto dump = clf.DumpModelSql(/*weights_only=*/true);
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump->find("m_corpus"), std::string::npos);
  EXPECT_NE(dump->find("m_weights"), std::string::npos);
}

TEST(BornScoreTest, TuneParamsEmptyGridRejected) {
  engine::Database db;
  BornSqlClassifier clf(&db, "m", DummySource());
  EXPECT_FALSE(clf.TuneParams("SELECT 1 AS n", {}).ok());
}

}  // namespace
}  // namespace bornsql::born
