#include "types/value.h"

#include <gtest/gtest.h>

namespace bornsql {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntAccessors) {
  Value v = Value::Int(42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 42.0);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleToString) {
  EXPECT_EQ(Value::Double(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Double(-0.25).ToString(), "-0.25");
}

TEST(ValueTest, BoolIsInt) {
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
}

TEST(ValueTest, TruthySemantics) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Int(-3).Truthy());
  EXPECT_FALSE(Value::Double(0.0).Truthy());
  EXPECT_TRUE(Value::Double(0.1).Truthy());
  EXPECT_FALSE(Value::Text("").Truthy());
  EXPECT_TRUE(Value::Text("x").Truthy());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(Value::Compare(Value::Int(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Double(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.5), Value::Int(3)), 0);
}

TEST(ValueTest, CompareTypeClasses) {
  // NULL < numeric < text.
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_LT(Value::Compare(Value::Int(1000), Value::Text("")), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, CompareText) {
  EXPECT_LT(Value::Compare(Value::Text("abc"), Value::Text("abd")), 0);
  EXPECT_EQ(Value::Compare(Value::Text("abc"), Value::Text("abc")), 0);
}

TEST(ValueTest, SqlEqualsNullNeverMatches) {
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(Value::SqlEquals(Value::Null(), Value::Int(1)));
  EXPECT_TRUE(Value::SqlEquals(Value::Int(1), Value::Double(1.0)));
}

TEST(ValueTest, CoerceIntToDouble) {
  auto r = Value::Int(7).CoerceTo(ValueType::kDouble);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_double());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 7.0);
}

TEST(ValueTest, CoerceDoubleToIntTruncates) {
  auto r = Value::Double(3.9).CoerceTo(ValueType::kInt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 3);
}

TEST(ValueTest, CoerceTextParsesNumbers) {
  auto i = Value::Text("123").CoerceTo(ValueType::kInt);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt(), 123);
  auto d = Value::Text("1.25").CoerceTo(ValueType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->AsDouble(), 1.25);
}

TEST(ValueTest, CoerceBadTextFails) {
  EXPECT_FALSE(Value::Text("12abc").CoerceTo(ValueType::kInt).ok());
  EXPECT_FALSE(Value::Text("").CoerceTo(ValueType::kDouble).ok());
}

TEST(ValueTest, CoerceNullIsIdentity) {
  auto r = Value::Null().CoerceTo(ValueType::kInt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
}

TEST(ValueTest, HashConsistentWithCompare) {
  // Int and equal-valued double must hash alike (they compare equal).
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
}

TEST(ValueTest, HashRowDiffersOnContent) {
  Row a = {Value::Int(1), Value::Text("x")};
  Row b = {Value::Int(1), Value::Text("y")};
  EXPECT_NE(HashRow(a), HashRow(b));
}

}  // namespace
}  // namespace bornsql
