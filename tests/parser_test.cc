#include "sql/parser.h"

#include <gtest/gtest.h>

namespace bornsql::sql {
namespace {

Statement MustParse(std::string_view s) {
  auto r = ParseStatement(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << s;
  return r.ok() ? std::move(r).value() : Statement{};
}

TEST(ParserTest, SimpleSelect) {
  Statement st = MustParse("SELECT a, b FROM t WHERE a = 1");
  ASSERT_EQ(st.kind, StatementKind::kSelect);
  const SelectCore& core = st.select->cores[0];
  EXPECT_EQ(core.items.size(), 2u);
  EXPECT_EQ(core.items[0].expr->column, "a");
  ASSERT_EQ(core.from.size(), 1u);
  EXPECT_EQ(core.from[0].table_name, "t");
  ASSERT_NE(core.where, nullptr);
  EXPECT_EQ(core.where->binary_op, BinaryOp::kEq);
}

TEST(ParserTest, SelectStarAndQualifiedStar) {
  Statement st = MustParse("SELECT *, t.* FROM t");
  const SelectCore& core = st.select->cores[0];
  EXPECT_TRUE(core.items[0].is_star);
  EXPECT_TRUE(core.items[1].is_star);
  EXPECT_EQ(core.items[1].star_qualifier, "t");
}

TEST(ParserTest, AliasWithAndWithoutAs) {
  Statement st = MustParse("SELECT a AS x, b y FROM t");
  const SelectCore& core = st.select->cores[0];
  EXPECT_EQ(core.items[0].alias, "x");
  EXPECT_EQ(core.items[1].alias, "y");
}

TEST(ParserTest, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  // Must parse as 1 + (2 * 3).
  EXPECT_EQ((*e)->binary_op, BinaryOp::kAdd);
  EXPECT_EQ((*e)->right->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  auto e = ParseExpression("a + 1 < b * 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kLt);
}

TEST(ParserTest, AndOrPrecedence) {
  auto e = ParseExpression("a OR b AND c");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kOr);
  EXPECT_EQ((*e)->right->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, ConcatOperator) {
  auto e = ParseExpression("'pubname:' || pubname");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kConcat);
}

TEST(ParserTest, FunctionCall) {
  auto e = ParseExpression("POW(x, 2)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kFunctionCall);
  EXPECT_EQ((*e)->func_name, "POW");
  EXPECT_EQ((*e)->args.size(), 2u);
}

TEST(ParserTest, CountStar) {
  auto e = ParseExpression("COUNT(*)");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ((*e)->args.size(), 1u);
  EXPECT_EQ((*e)->args[0]->kind, ExprKind::kStar);
}

TEST(ParserTest, WindowFunction) {
  Statement st = MustParse(
      "SELECT n, ROW_NUMBER() OVER(PARTITION BY n ORDER BY w DESC) AS r "
      "FROM HWX_nk");
  const auto& item = st.select->cores[0].items[1];
  EXPECT_EQ(item.expr->kind, ExprKind::kWindow);
  EXPECT_EQ(item.expr->partition_by.size(), 1u);
  ASSERT_EQ(item.expr->window_order_by.size(), 1u);
  EXPECT_TRUE(item.expr->window_order_by[0].second);  // DESC
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  Statement st = MustParse(
      "SELECT n, SUM(w) AS w FROM t GROUP BY n HAVING SUM(w) > 0 "
      "ORDER BY w DESC LIMIT 10 OFFSET 5");
  const SelectCore& core = st.select->cores[0];
  EXPECT_EQ(core.group_by.size(), 1u);
  ASSERT_NE(core.having, nullptr);
  EXPECT_EQ(st.select->order_by.size(), 1u);
  EXPECT_TRUE(st.select->order_by[0].desc);
  ASSERT_NE(st.select->limit, nullptr);
  ASSERT_NE(st.select->offset, nullptr);
}

TEST(ParserTest, CommaJoinList) {
  Statement st = MustParse("SELECT 1 FROM a, b, c WHERE a.x = b.x");
  EXPECT_EQ(st.select->cores[0].from.size(), 3u);
  EXPECT_EQ(st.select->cores[0].from[1].join_kind, TableRef::JoinKind::kComma);
}

TEST(ParserTest, ExplicitJoins) {
  Statement st = MustParse(
      "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y "
      "CROSS JOIN d");
  const auto& from = st.select->cores[0].from;
  ASSERT_EQ(from.size(), 4u);
  EXPECT_EQ(from[1].join_kind, TableRef::JoinKind::kInner);
  EXPECT_EQ(from[2].join_kind, TableRef::JoinKind::kLeft);
  EXPECT_EQ(from[3].join_kind, TableRef::JoinKind::kCross);
  EXPECT_NE(from[1].join_condition, nullptr);
  EXPECT_EQ(from[3].join_condition, nullptr);
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM (SELECT 1)").ok());
  EXPECT_TRUE(ParseStatement("SELECT 1 FROM (SELECT 1 AS x) AS s").ok());
}

TEST(ParserTest, WithCte) {
  Statement st = MustParse(
      "WITH a AS (SELECT 1 AS x), b AS (SELECT x FROM a) SELECT x FROM b");
  ASSERT_EQ(st.select->ctes.size(), 2u);
  EXPECT_EQ(st.select->ctes[0].name, "a");
  EXPECT_EQ(st.select->ctes[1].name, "b");
}

TEST(ParserTest, UnionAll) {
  Statement st = MustParse("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3");
  EXPECT_EQ(st.select->cores.size(), 3u);
}

TEST(ParserTest, PlainUnionRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 UNION SELECT 2").ok());
}

TEST(ParserTest, CreateTable) {
  Statement st = MustParse(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, w REAL)");
  ASSERT_EQ(st.kind, StatementKind::kCreateTable);
  const CreateTableStmt& ct = *st.create_table;
  EXPECT_EQ(ct.table, "t");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[0].type, ValueType::kInt);
  EXPECT_EQ(ct.columns[1].type, ValueType::kText);
  EXPECT_EQ(ct.columns[2].type, ValueType::kDouble);
}

TEST(ParserTest, CreateTableCompositeKey) {
  Statement st = MustParse(
      "CREATE TABLE corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k))");
  EXPECT_EQ(st.create_table->primary_key.size(), 2u);
}

TEST(ParserTest, CreateTableIfNotExistsAndAsSelect) {
  Statement st = MustParse("CREATE TABLE IF NOT EXISTS t AS SELECT 1 AS x");
  EXPECT_TRUE(st.create_table->if_not_exists);
  EXPECT_NE(st.create_table->as_select, nullptr);
}

TEST(ParserTest, DropTable) {
  Statement st = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(st.drop_table->if_exists);
}

TEST(ParserTest, InsertValues) {
  Statement st = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_EQ(st.kind, StatementKind::kInsert);
  EXPECT_EQ(st.insert->columns.size(), 2u);
  EXPECT_EQ(st.insert->values.size(), 2u);
}

TEST(ParserTest, InsertSelectWithOnConflict) {
  Statement st = MustParse(
      "INSERT INTO corpus (j, k, w) SELECT j, k, w FROM P_jk "
      "ON CONFLICT (j, k) DO UPDATE SET w = corpus.w + excluded.w");
  ASSERT_NE(st.insert->select, nullptr);
  ASSERT_NE(st.insert->on_conflict, nullptr);
  EXPECT_EQ(st.insert->on_conflict->target_columns.size(), 2u);
  ASSERT_EQ(st.insert->on_conflict->set_clauses.size(), 1u);
  EXPECT_EQ(st.insert->on_conflict->set_clauses[0].first, "w");
}

TEST(ParserTest, OnConflictDoNothing) {
  Statement st = MustParse(
      "INSERT INTO t (a) VALUES (1) ON CONFLICT (a) DO NOTHING");
  EXPECT_TRUE(st.insert->on_conflict->do_nothing);
}

TEST(ParserTest, UpdateAndDelete) {
  Statement st = MustParse("UPDATE params SET a = 0.5, b = 1 WHERE model = 'm'");
  ASSERT_EQ(st.kind, StatementKind::kUpdate);
  EXPECT_EQ(st.update->set_clauses.size(), 2u);
  Statement st2 = MustParse("DELETE FROM t WHERE id < 10");
  ASSERT_EQ(st2.kind, StatementKind::kDelete);
  EXPECT_NE(st2.del->where, nullptr);
}

TEST(ParserTest, CaseExpression) {
  auto e = ParseExpression(
      "CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kCase);
  EXPECT_EQ((*e)->when_clauses.size(), 2u);
  EXPECT_NE((*e)->else_clause, nullptr);
}

TEST(ParserTest, CaseWithOperandDesugars) {
  auto e = ParseExpression("CASE x WHEN 1 THEN 'a' END");
  ASSERT_TRUE(e.ok());
  // Desugared to (x = 1).
  EXPECT_EQ((*e)->when_clauses[0].first->binary_op, BinaryOp::kEq);
}

TEST(ParserTest, BetweenDesugarsToAnd) {
  auto e = ParseExpression("x BETWEEN 1 AND 5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, InListAndIsNull) {
  auto e = ParseExpression("x IN (1, 2, 3)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kInList);
  auto e2 = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e2)->kind, ExprKind::kIsNull);
  EXPECT_TRUE((*e2)->negated);
}

TEST(ParserTest, CastLowersToFunction) {
  auto e = ParseExpression("CAST(x AS INTEGER)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kFunctionCall);
  EXPECT_EQ((*e)->func_name, "cast");
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto r = ParseScript("SELECT 1; SELECT 2;; SELECT 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t blah blah").ok());
}

TEST(ParserTest, PaperQueriesParse) {
  // Every listing from the paper's Section 3 must parse.
  const char* queries[] = {
      // (16) XY_njk
      "SELECT X_nj.n AS n, X_nj.j AS j, Y_nk.k AS k, X_nj.w * Y_nk.w AS w "
      "FROM X_nj, Y_nk WHERE X_nj.n = Y_nk.n",
      // (17) XY_n
      "SELECT n, SUM(w) AS w FROM XY_njk GROUP BY n",
      // (18) P_jk
      "SELECT XY_njk.j AS j, XY_njk.k AS k, "
      "SUM(W_n.w * XY_njk.w / XY_n.w) AS w FROM XY_njk, XY_n, W_n "
      "WHERE XY_njk.n = XY_n.n AND XY_njk.n = W_n.n "
      "GROUP BY XY_njk.j, XY_njk.k",
      // corpus upsert
      "INSERT INTO model_corpus (j, k, w) SELECT j, k, w FROM P_jk "
      "ON CONFLICT (j, k) DO UPDATE SET w = model_corpus.w + excluded.w",
      // (19) ABH
      "SELECT a, b, h FROM params WHERE model = 'model'",
      // (22) W_jk
      "SELECT P_jk.j AS j, P_jk.k AS k, "
      "P_jk.w / (POW(P_k.w, b) * POW(P_j.w, 1 - b)) AS w "
      "FROM P_jk, P_j, P_k, ABH WHERE P_jk.j = P_j.j AND P_jk.k = P_k.k",
      // argmax via ROW_NUMBER
      "SELECT R_nk.n, R_nk.k FROM (SELECT n, k, ROW_NUMBER() OVER("
      "PARTITION BY n ORDER BY w DESC) AS r FROM HWX_nk) AS R_nk "
      "WHERE r = 1",
      // preprocessing q_x with prefixes
      "SELECT id as n, 'pubname:'||pubname as j, 1.0 as w FROM publication",
      // subsampling
      "SELECT id as n FROM publication WHERE id % 10 <= 0",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(ParseStatement(q).ok()) << q;
  }
}

}  // namespace
}  // namespace bornsql::sql
