// SQL linter tests: every BSLnnn rule has a golden trigger and a golden
// non-trigger, plus diagnostic ordering/dedupe and the EXPLAIN LINT surface.
#include "lint/linter.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "lint/diagnostic.h"
#include "tests/test_util.h"

namespace bornsql::lint {
namespace {

using ::bornsql::testing::MustQuery;

std::vector<Diagnostic> MustLint(std::string_view sql,
                                 const catalog::Catalog* catalog = nullptr) {
  auto r = LintSql(sql, catalog);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nsql: " << sql;
  return r.ok() ? std::move(r).value() : std::vector<Diagnostic>{};
}

// Codes of all findings, in reported order.
std::vector<std::string> Codes(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) out.push_back(d.code);
  return out;
}

bool HasCode(const std::vector<Diagnostic>& diags, std::string_view code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// BSL001: comma join with no connecting predicate.

TEST(LintTest, Bsl001TriggersOnDisconnectedCommaJoin) {
  auto diags = MustLint("SELECT 1 FROM a, b");
  ASSERT_TRUE(HasCode(diags, "BSL001")) << "got: " << diags.size();
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("CROSS JOIN"), std::string::npos);
  // The span points at the disconnected table reference.
  EXPECT_TRUE(diags[0].loc.valid());
}

TEST(LintTest, Bsl001SilentWhenPredicateConnectsTheTables) {
  EXPECT_FALSE(HasCode(
      MustLint("SELECT 1 FROM a, b WHERE a.x = b.y"), "BSL001"));
}

TEST(LintTest, Bsl001SilentOnExplicitCrossJoin) {
  // Spelling out CROSS JOIN declares the cartesian product intentional.
  EXPECT_FALSE(HasCode(MustLint("SELECT 1 FROM a CROSS JOIN b"), "BSL001"));
}

// ---------------------------------------------------------------------------
// BSL002: non-sargable predicate.

TEST(LintTest, Bsl002TriggersOnFunctionOverColumn) {
  auto diags = MustLint("SELECT a FROM t WHERE lower(b) = 'x'");
  ASSERT_TRUE(HasCode(diags, "BSL002"));
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST(LintTest, Bsl002TriggersOnArithmeticOverColumn) {
  EXPECT_TRUE(HasCode(MustLint("SELECT a FROM t WHERE a + 1 = 10"),
                      "BSL002"));
}

TEST(LintTest, Bsl002SilentOnBareColumnComparison) {
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t WHERE b = 'x'"), "BSL002"));
  // Function over constants only (column on the other side) stays sargable.
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t WHERE b = lower('X')"),
                       "BSL002"));
}

// ---------------------------------------------------------------------------
// BSL003: implicit text/numeric coercion (catalog-aware).

class LintCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE t (a INTEGER, b TEXT);"
        "CREATE TABLE keyed (j TEXT, k, w REAL, PRIMARY KEY (j, k));"
        "CREATE TABLE keyless (a INTEGER)"));
  }
  engine::Database db_;
};

TEST_F(LintCatalogTest, Bsl003TriggersOnTextColumnVsNumericLiteral) {
  auto diags = MustLint("SELECT a FROM t WHERE b = 5", &db_.catalog());
  ASSERT_TRUE(HasCode(diags, "BSL003"));
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
}

TEST_F(LintCatalogTest, Bsl003SilentOnMatchingTypes) {
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t WHERE b = '5'",
                                &db_.catalog()), "BSL003"));
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t WHERE a = 5",
                                &db_.catalog()), "BSL003"));
}

TEST_F(LintCatalogTest, Bsl003SkippedWithoutCatalog) {
  // Without a catalog the declared column types are unknown; the rule must
  // stay silent rather than guess.
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t WHERE b = 5"), "BSL003"));
}

// ---------------------------------------------------------------------------
// BSL004: unused CTE.

TEST(LintTest, Bsl004TriggersOnUnreferencedCte) {
  auto diags = MustLint("WITH u AS (SELECT 1 AS x) SELECT 2");
  ASSERT_TRUE(HasCode(diags, "BSL004"));
  EXPECT_NE(diags[0].message.find("u"), std::string::npos);
}

TEST(LintTest, Bsl004SilentWhenCteIsReferenced) {
  EXPECT_FALSE(HasCode(
      MustLint("WITH u AS (SELECT 1 AS x) SELECT x FROM u"), "BSL004"));
}

TEST(LintTest, Bsl004SilentWhenCteIsUsedByALaterCte) {
  EXPECT_FALSE(HasCode(
      MustLint("WITH u AS (SELECT 1 AS x), "
               "v AS (SELECT x FROM u) SELECT x FROM v"),
      "BSL004"));
}

// ---------------------------------------------------------------------------
// BSL005: ON CONFLICT target vs the table's unique key (catalog-aware).

TEST_F(LintCatalogTest, Bsl005TriggersOnTargetKeyMismatch) {
  auto diags = MustLint(
      "INSERT INTO keyed (j, k, w) VALUES ('a', 1, 1.0) "
      "ON CONFLICT (j) DO UPDATE SET w = 0",
      &db_.catalog());
  ASSERT_TRUE(HasCode(diags, "BSL005"));
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST_F(LintCatalogTest, Bsl005TriggersOnKeylessTable) {
  auto diags = MustLint(
      "INSERT INTO keyless (a) VALUES (1) "
      "ON CONFLICT (a) DO UPDATE SET a = 2",
      &db_.catalog());
  ASSERT_TRUE(HasCode(diags, "BSL005"));
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST_F(LintCatalogTest, Bsl005SilentWhenTargetMatchesKey) {
  EXPECT_FALSE(HasCode(
      MustLint("INSERT INTO keyed (j, k, w) VALUES ('a', 1, 1.0) "
               "ON CONFLICT (j, k) DO UPDATE SET w = 0",
               &db_.catalog()),
      "BSL005"));
}

// ---------------------------------------------------------------------------
// BSL006: LIMIT without ORDER BY.

TEST(LintTest, Bsl006TriggersOnBareLimit) {
  auto diags = MustLint("SELECT a FROM t LIMIT 3");
  ASSERT_TRUE(HasCode(diags, "BSL006"));
}

TEST(LintTest, Bsl006SilentWithOrderBy) {
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t ORDER BY a LIMIT 3"),
                       "BSL006"));
}

// ---------------------------------------------------------------------------
// BSL007: UPDATE/DELETE without WHERE.

TEST(LintTest, Bsl007TriggersOnUnfilteredUpdateAndDelete) {
  EXPECT_TRUE(HasCode(MustLint("DELETE FROM t"), "BSL007"));
  EXPECT_TRUE(HasCode(MustLint("UPDATE t SET a = 1"), "BSL007"));
}

TEST(LintTest, Bsl007SilentWithWhere) {
  EXPECT_FALSE(HasCode(MustLint("DELETE FROM t WHERE a = 1"), "BSL007"));
  EXPECT_FALSE(HasCode(MustLint("UPDATE t SET a = 1 WHERE a = 2"),
                       "BSL007"));
}

// ---------------------------------------------------------------------------
// BSL008: ORDER BY in a derived table or CTE without LIMIT.

TEST(LintTest, Bsl008TriggersOnSortedDerivedTable) {
  auto diags =
      MustLint("SELECT x FROM (SELECT a AS x FROM t ORDER BY a) d");
  ASSERT_TRUE(HasCode(diags, "BSL008"));
  for (const Diagnostic& d : diags) {
    if (d.code != "BSL008") continue;
    EXPECT_EQ(d.severity, Severity::kWarning);
    EXPECT_EQ(d.message,
              "ORDER BY in a derived table or CTE without LIMIT has no "
              "effect and wastes a sort");
  }
}

TEST(LintTest, Bsl008TriggersOnSortedCte) {
  EXPECT_TRUE(HasCode(
      MustLint("WITH w AS (SELECT a FROM t ORDER BY a) SELECT a FROM w"),
      "BSL008"));
}

TEST(LintTest, Bsl008SilentWithLimitOrAtTopLevel) {
  // LIMIT makes the subquery's sort meaningful (top-N).
  EXPECT_FALSE(HasCode(
      MustLint("SELECT x FROM (SELECT a AS x FROM t ORDER BY a LIMIT 3) d"),
      "BSL008"));
  EXPECT_FALSE(HasCode(
      MustLint(
          "WITH w AS (SELECT a FROM t ORDER BY a LIMIT 3) SELECT a FROM w"),
      "BSL008"));
  // A top-level ORDER BY is the query's own output order.
  EXPECT_FALSE(HasCode(MustLint("SELECT a FROM t ORDER BY a"), "BSL008"));
}

// ---------------------------------------------------------------------------
// Diagnostic plumbing: ordering, dedupe, rendering.

TEST(LintTest, DiagnosticsAreOrderedBySourcePosition) {
  // Two findings on one line: the comma join (BSL001, at the second table
  // ref) and the bare LIMIT (BSL006, further right).
  auto diags = MustLint("SELECT 1 FROM a, b LIMIT 3");
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"BSL001", "BSL006"}));
  EXPECT_LT(diags[0].loc.column, diags[1].loc.column);
}

TEST(LintTest, SortAndDedupeCollapsesExactDuplicatesOnly) {
  sql::SourceLoc at{10, 2, 5};
  sql::SourceLoc unknown{};  // invalid span sorts last
  std::vector<Diagnostic> diags = {
      {"BSL006", Severity::kWarning, "dup", at},
      {"BSV001", Severity::kError, "no span", unknown},
      {"BSL001", Severity::kWarning, "earlier code", at},
      {"BSL006", Severity::kWarning, "dup", at},
  };
  SortAndDedupe(&diags);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].code, "BSL001");  // same span: code breaks the tie
  EXPECT_EQ(diags[1].code, "BSL006");
  EXPECT_EQ(diags[2].code, "BSV001");  // unknown span last
  EXPECT_TRUE(HasError(diags));
  EXPECT_FALSE(HasError({diags[0], diags[1]}));
}

TEST(LintTest, FormatDiagnosticRendersCodeSeverityAndSpan) {
  Diagnostic d{"BSL006", Severity::kWarning, "LIMIT without ORDER BY",
               sql::SourceLoc{16, 1, 17}};
  EXPECT_EQ(FormatDiagnostic(d),
            "BSL006 warning: LIMIT without ORDER BY (at line 1:17)");
  d.loc = sql::SourceLoc{};  // no span recorded
  d.severity = Severity::kError;
  EXPECT_EQ(FormatDiagnostic(d), "BSL006 error: LIMIT without ORDER BY");
}

TEST(LintTest, LintSqlFailsOnlyOnParseErrors) {
  auto r = LintSql("SELECT FROM", nullptr);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LintTest, LintSqlWalksEveryStatementOfAScript) {
  auto diags = MustLint("DELETE FROM t;\nUPDATE t SET a = 1;");
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"BSL007", "BSL007"}));
  EXPECT_EQ(diags[0].loc.line, 1u);
  EXPECT_EQ(diags[1].loc.line, 2u);
}

// ---------------------------------------------------------------------------
// EXPLAIN LINT end-to-end through the engine.

TEST_F(LintCatalogTest, ExplainLintReportsFindings) {
  auto r = MustQuery(db_, "EXPLAIN LINT SELECT a FROM t LIMIT 3");
  ASSERT_EQ(r.column_names, (std::vector<std::string>{"lint"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(r.rows[0][0].AsText().find("BSL006"), std::string::npos);
}

TEST_F(LintCatalogTest, ExplainLintCleanStatementSaysOk) {
  auto r = MustQuery(db_, "EXPLAIN LINT SELECT a FROM t WHERE a = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "ok: no lint findings");
}

}  // namespace
}  // namespace bornsql::lint
