// Translation validation tests: deliberately broken rewrites -- injected
// through the test-only optimizer sabotage hook -- are caught with the
// expected BSV011-BSV016 codes and messages, clean statements validate
// with zero violations, and (the acceptance bar) every statement the
// BornSQL driver generates passes translation validation under every join
// strategy and CTE mode.
#include "lint/translation_validator.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>

#include "born/born_sql.h"
#include "engine/database.h"
#include "engine/optimizer.h"
#include "plan/logical_plan.h"
#include "tests/test_util.h"

namespace bornsql::lint {
namespace {

using ::bornsql::testing::MustQuery;
using plan::LogicalKind;
using plan::LogicalNode;

// First node of `kind` in pre-order, or null.
LogicalNode* FindNode(LogicalNode* n, LogicalKind kind) {
  if (n->kind == kind) return n;
  for (auto& c : n->children) {
    if (LogicalNode* hit = FindNode(c.get(), kind)) return hit;
  }
  return nullptr;
}

class TranslationValidatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE t (a INTEGER, b INTEGER, c TEXT);"
        "CREATE TABLE u (a INTEGER, b INTEGER);"
        "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'z');"
        "INSERT INTO u VALUES (1, 100), (2, 200), (4, 400)"));
    db_.config().verify_rewrites = true;  // armed regardless of build type
  }

  void TearDown() override {
    engine::SetOptimizerSabotageForTesting(nullptr);
  }

  // Installs a hook that applies `mutate` to the plan the first time
  // `rule` finishes on a tree `mutate` can handle (CTE bodies are
  // rule-optimized too, so a rule can run more than once per statement),
  // simulating a miscompiling implementation of it. `mutate` returns
  // whether it changed anything.
  void SabotageRule(const std::string& rule,
                    std::function<bool(LogicalNode*)> mutate) {
    auto fired = std::make_shared<bool>(false);
    engine::SetOptimizerSabotageForTesting(
        [rule, mutate = std::move(mutate), fired](const std::string& name,
                                                  LogicalNode* root) {
          if (name != rule || *fired) return;
          if (mutate(root)) *fired = true;
        });
  }

  // Runs `sql`, asserting it fails translation validation after `rule`
  // with a diagnostic containing `code` and `message_part`.
  void ExpectViolation(const std::string& sql, const std::string& rule,
                       const std::string& code,
                       const std::string& message_part) {
    auto result = db_.Execute(sql);
    ASSERT_FALSE(result.ok()) << "expected a validation failure: " << sql;
    const std::string msg = result.status().ToString();
    EXPECT_NE(
        msg.find("translation validation failed after rule '" + rule + "'"),
        std::string::npos)
        << msg;
    EXPECT_NE(msg.find(code), std::string::npos) << msg;
    EXPECT_NE(msg.find(message_part), std::string::npos) << msg;
  }

  engine::Database db_;
};

TEST_F(TranslationValidatorTest, CleanStatementValidatesWithZeroViolations) {
  auto r = MustQuery(db_,
                     "EXPLAIN VERIFY SELECT t.a, count(u.b) FROM t, u "
                     "WHERE t.a = u.a AND t.b > 1 + 2 GROUP BY t.a");
  ASSERT_FALSE(r.rows.empty());
  const std::string& line = r.rows.back()[0].AsText();
  EXPECT_EQ(line.find("ok: "), 0u) << line;
  EXPECT_NE(line.find("translation-validated"), std::string::npos) << line;
  EXPECT_NE(line.find("0 violations"), std::string::npos) << line;
}

TEST_F(TranslationValidatorTest, SetBornVerifyRewritesTogglesTheConfig) {
  db_.config().verify_rewrites = false;
  BORNSQL_ASSERT_OK(db_.Execute("SET born.verify_rewrites = 1").status());
  EXPECT_TRUE(db_.config().verify_rewrites);
  BORNSQL_ASSERT_OK(db_.Execute("SET born.verify_rewrites = 0").status());
  EXPECT_FALSE(db_.config().verify_rewrites);
}

TEST_F(TranslationValidatorTest, Bsv011CatchesAPermutedOutputColumn) {
  // constant_folding fires (1+2); the sabotaged version also swaps the
  // first two projection items, changing what ordinal 0 means.
  SabotageRule("constant_folding", [](LogicalNode* root) {
    LogicalNode* project = FindNode(root, LogicalKind::kProject);
    if (project == nullptr || project->items.size() < 2) return false;
    std::swap(project->items[0], project->items[1]);
    return true;
  });
  ExpectViolation("SELECT a, b, 1 + 2 AS s FROM t WHERE a > 0",
                  "constant_folding", "BSV011", "output ordinal 0 changed");
}

TEST_F(TranslationValidatorTest, Bsv012CatchesADroppedPredicate) {
  // predicate_pushdown fires (t1.b > 1 sinks to the left leaf); the
  // sabotaged version also deletes a conjunct outright.
  SabotageRule("predicate_pushdown", [](LogicalNode* root) {
    for (LogicalNode* n = root; n != nullptr;
         n = n->children.empty() ? nullptr : n->children[0].get()) {
      if (n->kind == LogicalKind::kFilter && !n->conjuncts.empty()) {
        n->conjuncts.pop_back();
        return true;
      }
    }
    return false;
  });
  ExpectViolation(
      "SELECT t1.a FROM t t1, u t2 WHERE t1.a = t2.a AND t1.b > 1",
      "predicate_pushdown", "BSV012", "predicate dropped (1x)");
}

TEST_F(TranslationValidatorTest, Bsv013CatchesAChangedNodeSignature) {
  // constant_folding fires (1+2); the sabotaged version also halves the
  // LIMIT, a skeleton change no other check models.
  SabotageRule("constant_folding", [](LogicalNode* root) {
    LogicalNode* limit = FindNode(root, LogicalKind::kLimit);
    if (limit == nullptr) return false;
    limit->limit = 1;
    return true;
  });
  ExpectViolation("SELECT a, 1 + 2 AS s FROM t ORDER BY a LIMIT 2",
                  "constant_folding", "BSV013", "node signature changed");
}

TEST_F(TranslationValidatorTest, Bsv014CatchesACorruptedInlineSubstitution) {
  // Under inlined CTEs, cte_inline must replace each reference with a
  // Relabel over the binding's body under the same qualifier. The
  // sabotaged version renames the qualifier.
  db_.config().materialize_ctes = false;
  SabotageRule("cte_inline", [](LogicalNode* root) {
    LogicalNode* relabel = FindNode(root, LogicalKind::kRelabel);
    if (relabel == nullptr) return false;
    relabel->qualifier = "zz";
    return true;
  });
  ExpectViolation(
      "WITH w AS (SELECT a FROM t WHERE a > 0) SELECT a FROM w",
      "cte_inline", "BSV014", "inlined reference changed qualifier");
}

TEST_F(TranslationValidatorTest, Bsv014CatchesAMutatedInlinedBody) {
  db_.config().materialize_ctes = false;
  SabotageRule("cte_inline", [](LogicalNode* root) {
    LogicalNode* relabel = FindNode(root, LogicalKind::kRelabel);
    if (relabel == nullptr || relabel->children.empty()) return false;
    LogicalNode* filter =
        FindNode(relabel->children[0].get(), LogicalKind::kFilter);
    if (filter == nullptr || filter->conjuncts.empty()) return false;
    filter->conjuncts.pop_back();
    return true;
  });
  ExpectViolation(
      "WITH w AS (SELECT a FROM t WHERE a > 0) SELECT a FROM w",
      "cte_inline", "BSV014", "inlined body is not the binding's body");
}

TEST_F(TranslationValidatorTest, Bsv015CatchesAJoinKindFlip) {
  // By projection_pruning the join is an extracted inner join; the
  // sabotaged version silently turns it into a LEFT join.
  SabotageRule("projection_pruning", [](LogicalNode* root) {
    LogicalNode* join = FindNode(root, LogicalKind::kJoin);
    if (join == nullptr) return false;
    join->join_kind = plan::LogicalJoinKind::kLeft;
    return true;
  });
  ExpectViolation("SELECT t1.a FROM t t1, u t2 WHERE t1.a = t2.a",
                  "projection_pruning", "BSV015", "join contract changed");
}

TEST_F(TranslationValidatorTest, Bsv016CatchesAnUnreportedRewrite) {
  // equi_join_extraction has nothing to do on a single table and reports
  // zero rewrites; the sabotaged version still reorders the conjuncts -- a
  // semantically legal change every other check accepts, so only the
  // accounting check can catch the lie.
  SabotageRule("equi_join_extraction", [](LogicalNode* root) {
    LogicalNode* filter = FindNode(root, LogicalKind::kFilter);
    if (filter == nullptr || filter->conjuncts.size() < 2) return false;
    std::swap(filter->conjuncts[0], filter->conjuncts[1]);
    return true;
  });
  ExpectViolation("SELECT a FROM t WHERE a > 0 AND b > 1",
                  "equi_join_extraction", "BSV016",
                  "plan changed but the rule reported zero rewrites");
}

TEST_F(TranslationValidatorTest, SabotageSurfacesInOptimizerStatView) {
  // A violation must be recorded in born_stat_optimizer even though the
  // statement itself fails.
  SabotageRule("constant_folding", [](LogicalNode* root) {
    LogicalNode* project = FindNode(root, LogicalKind::kProject);
    if (project == nullptr || project->items.size() < 2) return false;
    std::swap(project->items[0], project->items[1]);
    return true;
  });
  EXPECT_FALSE(db_.Execute("SELECT a, b, 1 + 2 AS s FROM t").ok());
  engine::SetOptimizerSabotageForTesting(nullptr);
  auto r = MustQuery(db_,
                     "SELECT violations FROM born_stat_optimizer "
                     "WHERE rule = 'constant_folding'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GE(r.rows[0][0].AsInt(), 1);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: every statement the BornSQL driver generates, for
// every join strategy x CTE mode, plans and executes with translation
// validation armed. A single unsound rewrite anywhere fails the
// corresponding call with a BSV011-BSV016 message.

born::SqlSource Source() {
  born::SqlSource source;
  source.x_parts = {"SELECT n, j, w FROM item_feature"};
  source.y = "SELECT n, k, 1.0 AS w FROM items";
  return source;
}

constexpr const char* kAllItems = "SELECT n FROM items";

class ValidatedBornSweepTest
    : public ::testing::TestWithParam<std::pair<engine::JoinStrategy, bool>> {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE items (n INTEGER PRIMARY KEY, k INTEGER);"
        "CREATE TABLE item_feature (n INTEGER, j TEXT, w REAL);"
        "INSERT INTO items VALUES (1, 0), (2, 1), (3, 0), (4, 1), "
        "(5, 0), (6, 1);"
        "INSERT INTO item_feature VALUES "
        "(1,'a',1.0),(1,'b',1.0),(2,'c',1.0),(2,'d',1.0),"
        "(3,'a',1.0),(3,'e',1.0),(4,'c',1.0),(4,'f',1.0),"
        "(5,'b',1.0),(5,'e',1.0),(6,'d',1.0),(6,'f',1.0)"));
  }
  engine::Database db_;
};

TEST_P(ValidatedBornSweepTest, EveryGeneratedStatementPassesValidation) {
  db_.config().join_strategy = GetParam().first;
  db_.config().materialize_ctes = GetParam().second;
  db_.config().verify_plans = true;
  db_.config().verify_rewrites = true;

  born::BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items WHERE n <= 4"));
  BORNSQL_ASSERT_OK(clf.PartialFit("SELECT n FROM items WHERE n > 4"));
  auto pred = clf.Predict(kAllItems);
  BORNSQL_ASSERT_OK(pred.status());
  EXPECT_EQ(pred->size(), 6u);
  BORNSQL_ASSERT_OK(clf.Deploy());
  BORNSQL_ASSERT_OK(clf.Predict(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.PredictProba(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.ExplainGlobal(5).status());
  BORNSQL_ASSERT_OK(clf.ExplainLocal(kAllItems, 5).status());
  BORNSQL_ASSERT_OK(clf.Score(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.Unlearn("SELECT n FROM items WHERE n = 6"));
  BORNSQL_ASSERT_OK(clf.Undeploy());

  // Validation actually ran: born_stat_optimizer counts validated rules.
  auto r = MustQuery(db_,
                     "SELECT sum(validated), sum(violations) "
                     "FROM born_stat_optimizer");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_GT(r.rows[0][0].AsInt(), 0);
  EXPECT_EQ(r.rows[0][1].AsInt(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ValidatedBornSweepTest,
    ::testing::Values(
        std::make_pair(engine::JoinStrategy::kHash, true),
        std::make_pair(engine::JoinStrategy::kHash, false),
        std::make_pair(engine::JoinStrategy::kSortMerge, true),
        std::make_pair(engine::JoinStrategy::kSortMerge, false),
        std::make_pair(engine::JoinStrategy::kNestedLoop, true),
        std::make_pair(engine::JoinStrategy::kNestedLoop, false)),
    [](const auto& info) {
      const char* join =
          info.param.first == engine::JoinStrategy::kHash ? "Hash"
          : info.param.first == engine::JoinStrategy::kSortMerge
              ? "SortMerge"
              : "NestedLoop";
      return std::string(join) +
             (info.param.second ? "Materialized" : "Inlined");
    });

}  // namespace
}  // namespace bornsql::lint
