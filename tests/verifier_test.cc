// Plan-invariant verifier tests: hand-built broken operator trees are
// caught with the expected BSV codes, clean plans verify with zero
// violations, and — the acceptance bar — every statement the BornSQL
// driver generates passes the verifier under every join strategy and CTE
// mode the planner supports.
#include "lint/plan_verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "born/born_sql.h"
#include "engine/database.h"
#include "lint/linter.h"
#include "tests/test_util.h"

namespace bornsql::lint {
namespace {

using ::bornsql::testing::MustQuery;
using exec::BoundColumn;
using exec::MaterializedResult;
using exec::MaterializedScanOp;
using exec::OperatorPtr;

// A 2-column scan (a INTEGER, b TEXT) over no rows — the verifier is
// static, so data is irrelevant.
OperatorPtr MakeScan() {
  auto data = std::make_shared<MaterializedResult>();
  data->schema = Schema({{"t", "a", ValueType::kInt},
                         {"t", "b", ValueType::kText}});
  return std::make_unique<MaterializedScanOp>(data, data->schema);
}

std::vector<std::string> Codes(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) out.push_back(d.code);
  return out;
}

TEST(PlanVerifierTest, CleanPlanHasNoViolationsButRunsChecks) {
  std::vector<exec::BoundExprPtr> exprs;
  exprs.push_back(BoundColumn(1));
  auto plan = std::make_unique<exec::ProjectOp>(
      MakeScan(), std::move(exprs), Schema({{"", "b", ValueType::kText}}));
  size_t checks = 0;
  EXPECT_TRUE(VerifyPlan(*plan, &checks).empty());
  EXPECT_GT(checks, 0u);
  BORNSQL_EXPECT_OK(VerifyPlanStatus(*plan));
}

TEST(PlanVerifierTest, Bsv001CatchesDanglingColumnIndex) {
  // Filter over a 2-column input referencing column 5.
  auto plan = std::make_unique<exec::FilterOp>(MakeScan(), BoundColumn(5));
  auto diags = VerifyPlan(*plan);
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"BSV001"}));
  EXPECT_EQ(diags[0].severity, Severity::kError);
  Status st = VerifyPlanStatus(*plan);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("BSV001"), std::string::npos);
}

TEST(PlanVerifierTest, Bsv001CatchesDanglingIndexNestedInsideAnExpression) {
  // The bad reference sits under an arithmetic node, not at the root.
  auto bad = std::make_unique<exec::BoundExpr>();
  bad->kind = exec::BoundKind::kBinary;
  bad->binary_op = exec::BoundBinaryOp::kAdd;
  bad->children.push_back(BoundColumn(0));
  bad->children.push_back(BoundColumn(9));
  auto plan = std::make_unique<exec::FilterOp>(MakeScan(), std::move(bad));
  EXPECT_EQ(Codes(VerifyPlan(*plan)), (std::vector<std::string>{"BSV001"}));
}

TEST(PlanVerifierTest, Bsv005CatchesProjectionWidthMismatch) {
  // One projection expression, two declared output columns.
  std::vector<exec::BoundExprPtr> exprs;
  exprs.push_back(BoundColumn(0));
  auto plan = std::make_unique<exec::ProjectOp>(
      MakeScan(), std::move(exprs),
      Schema({{"", "a", ValueType::kInt}, {"", "ghost", ValueType::kInt}}));
  auto diags = VerifyPlan(*plan);
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"BSV005"}));
}

TEST(PlanVerifierTest, Bsv006CatchesTextVsNumericJoinKeys) {
  // t.b (TEXT) joined against t.a (INTEGER): irreconcilable key types.
  std::vector<exec::BoundExprPtr> lkeys;
  std::vector<exec::BoundExprPtr> rkeys;
  lkeys.push_back(BoundColumn(1));  // TEXT
  rkeys.push_back(BoundColumn(0));  // INTEGER
  auto plan = std::make_unique<exec::HashJoinOp>(
      MakeScan(), MakeScan(), std::move(lkeys), std::move(rkeys),
      exec::JoinType::kInner);
  auto diags = VerifyPlan(*plan);
  ASSERT_EQ(Codes(diags), (std::vector<std::string>{"BSV006"}));
}

TEST(PlanVerifierTest, MatchingJoinKeyTypesAreClean) {
  std::vector<exec::BoundExprPtr> lkeys;
  std::vector<exec::BoundExprPtr> rkeys;
  lkeys.push_back(BoundColumn(0));
  rkeys.push_back(BoundColumn(0));
  auto plan = std::make_unique<exec::HashJoinOp>(
      MakeScan(), MakeScan(), std::move(lkeys), std::move(rkeys),
      exec::JoinType::kInner);
  EXPECT_TRUE(VerifyPlan(*plan).empty());
}

// ---------------------------------------------------------------------------
// EXPLAIN VERIFY and the SET born.verify_plans switch, through the engine.

class VerifierEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE items (n INTEGER PRIMARY KEY, k INTEGER);"
        "CREATE TABLE item_feature (n INTEGER, j TEXT, w REAL);"
        "INSERT INTO items VALUES (1, 0), (2, 1), (3, 0), (4, 1), "
        "(5, 0), (6, 1);"
        "INSERT INTO item_feature VALUES "
        "(1,'a',1.0),(1,'b',1.0),(2,'c',1.0),(2,'d',1.0),"
        "(3,'a',1.0),(3,'e',1.0),(4,'c',1.0),(4,'f',1.0),"
        "(5,'b',1.0),(5,'e',1.0),(6,'d',1.0),(6,'f',1.0)"));
  }
  engine::Database db_;
};

TEST_F(VerifierEngineTest, ExplainVerifyReportsChecksAndZeroViolations) {
  auto r = MustQuery(db_,
                     "EXPLAIN VERIFY SELECT i.n, count(f.j) FROM items i, "
                     "item_feature f WHERE i.n = f.n GROUP BY i.n");
  ASSERT_EQ(r.column_names, (std::vector<std::string>{"verify"}));
  // One row per verifier: physical plan invariants, then the optimizer
  // translation validator.
  ASSERT_EQ(r.rows.size(), 2u);
  const std::string& line = r.rows[0][0].AsText();
  EXPECT_EQ(line.find("ok: "), 0u) << line;
  EXPECT_NE(line.find("0 violations"), std::string::npos) << line;
  const std::string& vline = r.rows[1][0].AsText();
  EXPECT_EQ(vline.find("ok: "), 0u) << vline;
  EXPECT_NE(vline.find("translation-validated"), std::string::npos) << vline;
}

TEST_F(VerifierEngineTest, ExplainVerifyOnStatementWithoutAPlan) {
  auto r = MustQuery(db_, "EXPLAIN VERIFY DELETE FROM items WHERE n = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(),
            "ok: statement has no operator plan to verify");
  // The statement was only verified, never executed.
  auto count = MustQuery(db_, "SELECT count(*) FROM items");
  EXPECT_EQ(count.rows[0][0].AsInt(), 6);
}

TEST_F(VerifierEngineTest, SetBornVerifyPlansTogglesTheConfig) {
  db_.config().verify_plans = false;
  BORNSQL_ASSERT_OK(db_.Execute("SET born.verify_plans = 1").status());
  EXPECT_TRUE(db_.config().verify_plans);
  // Verified execution still returns correct results.
  auto r = MustQuery(db_, "SELECT count(*) FROM items WHERE k = 0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  BORNSQL_ASSERT_OK(db_.Execute("SET born.verify_plans = 0").status());
  EXPECT_FALSE(db_.config().verify_plans);
}

// ---------------------------------------------------------------------------
// The acceptance sweep: every statement the BornSQL driver generates, for
// every join strategy x CTE mode, executes with the verifier armed. A
// single planner index bug anywhere in fit/predict/explain/unlearn fails
// the corresponding call with a BSVnnn message.

born::SqlSource Source() {
  born::SqlSource source;
  source.x_parts = {"SELECT n, j, w FROM item_feature"};
  source.y = "SELECT n, k, 1.0 AS w FROM items";
  return source;
}

constexpr const char* kAllItems = "SELECT n FROM items";

class VerifiedBornSweepTest
    : public VerifierEngineTest,
      public ::testing::WithParamInterface<
          std::pair<engine::JoinStrategy, bool>> {};

TEST_P(VerifiedBornSweepTest, EveryGeneratedStatementPassesTheVerifier) {
  db_.config().join_strategy = GetParam().first;
  db_.config().materialize_ctes = GetParam().second;
  db_.config().verify_plans = true;  // armed regardless of build type

  born::BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit("SELECT n FROM items WHERE n <= 4"));
  BORNSQL_ASSERT_OK(clf.PartialFit("SELECT n FROM items WHERE n > 4"));

  // Undeployed inference computes the weight chain on the fly (Eqs. 8-10).
  auto pred = clf.Predict(kAllItems);
  BORNSQL_ASSERT_OK(pred.status());
  EXPECT_EQ(pred->size(), 6u);

  // Deployed inference reads the materialized weights table.
  BORNSQL_ASSERT_OK(clf.Deploy());
  BORNSQL_ASSERT_OK(clf.Predict(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.PredictProba(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.ExplainGlobal(5).status());
  BORNSQL_ASSERT_OK(clf.ExplainLocal(kAllItems, 5).status());
  BORNSQL_ASSERT_OK(clf.Score(kAllItems).status());
  BORNSQL_ASSERT_OK(clf.Unlearn("SELECT n FROM items WHERE n = 6"));
  BORNSQL_ASSERT_OK(clf.Undeploy());
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, VerifiedBornSweepTest,
    ::testing::Values(
        std::make_pair(engine::JoinStrategy::kHash, true),
        std::make_pair(engine::JoinStrategy::kHash, false),
        std::make_pair(engine::JoinStrategy::kSortMerge, true),
        std::make_pair(engine::JoinStrategy::kSortMerge, false),
        std::make_pair(engine::JoinStrategy::kNestedLoop, true),
        std::make_pair(engine::JoinStrategy::kNestedLoop, false)),
    [](const auto& info) {
      const char* join =
          info.param.first == engine::JoinStrategy::kHash ? "Hash"
          : info.param.first == engine::JoinStrategy::kSortMerge
              ? "SortMerge"
              : "NestedLoop";
      return std::string(join) +
             (info.param.second ? "Materialized" : "Inlined");
    });

TEST_F(VerifierEngineTest, GeneratedSqlSurvivesExplainVerifyAndLint) {
  // The driver's exposed SQL builders, pushed through both EXPLAIN
  // surfaces: the verifier must find zero violations and the linter must
  // find no error-severity diagnostics (warnings — the intentional 1-row
  // normalizer comma join — are expected).
  born::BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BORNSQL_ASSERT_OK(clf.Deploy());
  for (const std::string& sql :
       {clf.BuildPredictSql(kAllItems), clf.BuildPredictProbaSql(kAllItems)}) {
    auto verify = MustQuery(db_, "EXPLAIN VERIFY " + sql);
    // Plan-invariant row plus the translation-validator row.
    ASSERT_EQ(verify.rows.size(), 2u) << sql;
    for (const auto& row : verify.rows) {
      EXPECT_EQ(row[0].AsText().find("ok: "), 0u) << row[0].AsText();
    }

    auto diags = LintSql(sql, &db_.catalog());
    BORNSQL_ASSERT_OK(diags.status());
    EXPECT_FALSE(HasError(*diags)) << sql;
  }
  // The fit/deploy scripts parse-lint clean of errors too.
  for (const std::string& sql :
       {clf.BuildFitSql(kAllItems, /*unlearn=*/false), clf.BuildDeploySql()}) {
    auto diags = LintSql(sql, &db_.catalog());
    BORNSQL_ASSERT_OK(diags.status());
    EXPECT_FALSE(HasError(*diags)) << sql;
  }
}

}  // namespace
}  // namespace bornsql::lint
