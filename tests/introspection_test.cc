// Tests for the SQL-queryable introspection layer: the born_stat_* system
// views (schema goldens, resolution through the planner, composition with
// joins/filters/aggregation), statement normalization, the slow-query log,
// SET statements, and span-based tracing with Chrome trace export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/system_views.h"
#include "obs/trace.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

using engine::Database;
using engine::EngineConfig;
using engine::QueryResult;
using engine::SystemViews;
using bornsql::testing::MustQuery;
using bornsql::testing::RowStrings;

// Renders a view schema as "name TYPE" lines for golden comparison.
std::vector<std::string> SchemaLines(const std::string& view) {
  const Schema* schema = SystemViews::ViewSchema(view);
  std::vector<std::string> out;
  if (schema == nullptr) return out;
  for (const Column& col : schema->columns()) {
    out.push_back(col.name + " " + ValueTypeName(col.type));
  }
  return out;
}

void LoadFixture(Database* db) {
  BORNSQL_ASSERT_OK(db->ExecuteScript(
      "CREATE TABLE t1 (a INTEGER, b TEXT);"
      "INSERT INTO t1 VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w');"));
}

// ---------------------------------------------------------------------------
// Schema goldens: accidental drift in the view schemas must fail loudly.

TEST(SystemViewSchemaTest, StatStatementsGolden) {
  std::vector<std::string> expected = {
      "query TEXT",     "calls INTEGER",  "rows INTEGER", "errors INTEGER",
      "total_ms REAL",  "min_ms REAL",    "max_ms REAL",  "mean_ms REAL",
  };
  EXPECT_EQ(SchemaLines("born_stat_statements"), expected);
}

TEST(SystemViewSchemaTest, StatOperatorsGolden) {
  std::vector<std::string> expected = {
      "operator TEXT",   "instances INTEGER", "open_calls INTEGER",
      "next_calls INTEGER", "rows INTEGER",   "wall_ms REAL",
      "peak_entries INTEGER", "peak_mem INTEGER",
  };
  EXPECT_EQ(SchemaLines("born_stat_operators"), expected);
}

TEST(SystemViewSchemaTest, StatMemoryGolden) {
  std::vector<std::string> expected = {
      "tracker TEXT",        "level TEXT",         "current_bytes INTEGER",
      "peak_bytes INTEGER",  "limit_bytes INTEGER", "denials INTEGER",
  };
  EXPECT_EQ(SchemaLines("born_stat_memory"), expected);
}

TEST(SystemViewSchemaTest, StatTablesGolden) {
  std::vector<std::string> expected = {
      "name TEXT",       "columns INTEGER", "rows INTEGER",
      "scans INTEGER",   "inserts INTEGER", "updates INTEGER",
      "deletes INTEGER",
  };
  EXPECT_EQ(SchemaLines("born_stat_tables"), expected);
}

TEST(SystemViewSchemaTest, SlowLogGolden) {
  std::vector<std::string> expected = {
      "id INTEGER",      "query TEXT", "elapsed_ms REAL",
      "threshold_ms REAL", "rows INTEGER", "plan TEXT",
  };
  EXPECT_EQ(SchemaLines("born_slow_log"), expected);
}

TEST(SystemViewSchemaTest, ViewNamesAndSelectStarAgree) {
  EXPECT_EQ(SystemViews::ViewNames(),
            (std::vector<std::string>{"born_slow_log", "born_stat_memory",
                                      "born_stat_operators",
                                      "born_stat_optimizer",
                                      "born_stat_statements",
                                      "born_stat_tables"}));
  // SELECT * resolves the same columns the static schema declares.
  Database db;
  for (const std::string& view : SystemViews::ViewNames()) {
    QueryResult result = MustQuery(db, "SELECT * FROM " + view);
    const Schema* schema = SystemViews::ViewSchema(view);
    ASSERT_NE(schema, nullptr) << view;
    EXPECT_EQ(result.column_names, schema->ColumnNames()) << view;
  }
}

// ---------------------------------------------------------------------------
// born_stat_statements

TEST(StatStatementsTest, AggregatesByNormalizedText) {
  Database db;
  LoadFixture(&db);
  // Three executions differing only in literals → one entry, 3 calls.
  MustQuery(db, "SELECT a FROM t1 WHERE a = 1");
  MustQuery(db, "select a from t1 where a =   2");
  MustQuery(db, "SELECT a FROM t1 WHERE a = 3;");
  QueryResult result = MustQuery(
      db,
      "SELECT calls, rows FROM born_stat_statements "
      "WHERE query = 'SELECT a FROM t1 WHERE a = ?'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 3);
  EXPECT_EQ(result.rows[0][1].AsInt(), 3);  // one row per execution
}

TEST(StatStatementsTest, RecordsErrorsAndTimings) {
  Database db;
  EXPECT_FALSE(db.Execute("SELECT x FROM missing_table").ok());
  QueryResult result = MustQuery(
      db,
      "SELECT calls, errors, total_ms >= min_ms AND max_ms >= min_ms "
      "FROM born_stat_statements WHERE query = 'SELECT x FROM "
      "missing_table'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 1);
  EXPECT_EQ(result.rows[0][1].AsInt(), 1);
  EXPECT_TRUE(result.rows[0][2].Truthy());
}

TEST(StatStatementsTest, SelfObservationExcludesInFlightStatement) {
  Database db;
  // The view materializes before this statement's own stats are recorded,
  // so a fresh database sees an empty statements view.
  QueryResult result = MustQuery(db, "SELECT COUNT(*) FROM born_stat_statements");
  EXPECT_EQ(result.rows[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// born_stat_operators

TEST(StatOperatorsTest, PopulatedByInstrumentedRuns) {
  obs::MetricsRegistry metrics;  // private registry: no cross-test state
  EngineConfig config;
  config.collect_exec_stats = true;
  Database db{config};
  db.set_metrics(&metrics);
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t1");
  QueryResult result = MustQuery(
      db,
      "SELECT instances, rows FROM born_stat_operators "
      "WHERE operator = 'SeqScan'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 1);
  EXPECT_EQ(result.rows[0][1].AsInt(), 4);
}

TEST(StatOperatorsTest, EmptyWithoutInstrumentation) {
  obs::MetricsRegistry metrics;  // private registry: no cross-test state
  Database db;
  db.set_metrics(&metrics);
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t1");
  QueryResult result =
      MustQuery(db, "SELECT COUNT(*) FROM born_stat_operators");
  EXPECT_EQ(result.rows[0][0].AsInt(), 0);
}

// ---------------------------------------------------------------------------
// born_stat_tables

TEST(StatTablesTest, TracksUsageCounters) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t1");           // scan 1
  MustQuery(db, "SELECT b FROM t1");           // scan 2
  MustQuery(db, "UPDATE t1 SET b = 'u' WHERE a = 1");
  MustQuery(db, "DELETE FROM t1 WHERE a = 4");
  QueryResult result = MustQuery(
      db,
      "SELECT columns, rows, scans, inserts, updates, deletes "
      "FROM born_stat_tables WHERE name = 't1'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 2);  // a, b
  EXPECT_EQ(result.rows[0][1].AsInt(), 3);  // 4 inserted - 1 deleted
  EXPECT_EQ(result.rows[0][2].AsInt(), 2);  // UPDATE/DELETE mutate directly
  EXPECT_EQ(result.rows[0][3].AsInt(), 4);
  EXPECT_EQ(result.rows[0][4].AsInt(), 1);
  EXPECT_EQ(result.rows[0][5].AsInt(), 1);
}

TEST(StatTablesTest, ComposesWithJoinsFiltersAggregation) {
  Database db;
  LoadFixture(&db);
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE watched (tbl TEXT, owner TEXT);"
      "INSERT INTO watched VALUES ('t1', 'alice'), ('nope', 'bob');"));
  // Join a system view against user data.
  QueryResult joined = MustQuery(
      db,
      "SELECT w.owner, s.rows FROM born_stat_tables s "
      "JOIN watched w ON s.name = w.tbl");
  EXPECT_EQ(RowStrings(joined), (std::vector<std::string>{"alice|4"}));
  // Aggregate over a filtered view scan.
  QueryResult agg = MustQuery(
      db,
      "SELECT COUNT(*), SUM(rows) FROM born_stat_tables WHERE rows > 0");
  EXPECT_EQ(agg.rows[0][0].AsInt(), 2);  // t1 and watched
  EXPECT_EQ(agg.rows[0][1].AsInt(), 6);  // 4 + 2
}

TEST(StatTablesTest, RealTableShadowsSystemView) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE born_stat_tables (x INTEGER);"
      "INSERT INTO born_stat_tables VALUES (7);"));
  QueryResult result = MustQuery(db, "SELECT x FROM born_stat_tables");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInt(), 7);
}

// ---------------------------------------------------------------------------
// SET + slow-query log

TEST(SetStatementTest, UnknownSettingIsRejected) {
  Database db;
  auto result = db.Execute("SET born.nonsense = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("born.nonsense"),
            std::string::npos);
}

TEST(SetStatementTest, VectorSizeKnob) {
  Database db;
  LoadFixture(&db);
  auto rendered = [&db]() {
    std::string out;
    for (const Row& row : MustQuery(db, "SELECT a FROM t1 ORDER BY a").rows) {
      out += row[0].ToString() + "\n";
    }
    return out;
  };
  const std::string baseline = rendered();
  // 1 is the scalar escape hatch; huge values clamp to kMaxVectorSize
  // rather than failing. Results never change with the chunk size.
  for (const char* size : {"1", "3", "1000000000"}) {
    MustQuery(db, std::string("SET born.vector_size = ") + size);
    EXPECT_EQ(rendered(), baseline) << "born.vector_size=" << size;
  }
  auto result = db.Execute("SET born.vector_size = 0");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("born.vector_size"),
            std::string::npos);
}

TEST(SetStatementTest, TogglesCollectExecStats) {
  obs::MetricsRegistry metrics;
  Database db;
  db.set_metrics(&metrics);
  LoadFixture(&db);
  MustQuery(db, "SET born.collect_exec_stats = 1");
  MustQuery(db, "SELECT a FROM t1");
  EXPECT_EQ(metrics.operator_aggregate("SeqScan").instances, 1u);
  MustQuery(db, "SET born.collect_exec_stats = 0");
  MustQuery(db, "SELECT a FROM t1");
  EXPECT_EQ(metrics.operator_aggregate("SeqScan").instances, 1u);
}

TEST(SlowQueryLogTest, DisarmedByDefault) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t1");
  QueryResult result = MustQuery(db, "SELECT COUNT(*) FROM born_slow_log");
  EXPECT_EQ(result.rows[0][0].AsInt(), 0);
}

TEST(SlowQueryLogTest, CapturesStatementAndAnnotatedPlan) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SET born.slow_query_ms = 0");  // everything is "slow"
  MustQuery(db, "SELECT a FROM t1 WHERE a > 1");
  QueryResult result = MustQuery(
      db,
      "SELECT query, threshold_ms, rows, plan FROM born_slow_log "
      "WHERE query = 'SELECT a FROM t1 WHERE a > ?'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.rows[0][1].AsDouble(), 0.0);
  EXPECT_EQ(result.rows[0][2].AsInt(), 3);
  // The logged plan is stats-annotated (auto_explain style).
  const std::string plan = result.rows[0][3].AsText();
  EXPECT_NE(plan.find("SeqScan(t1"), std::string::npos);
  EXPECT_NE(plan.find("actual rows="), std::string::npos);
  // Disarm: later statements are no longer captured.
  MustQuery(db, "SET born.slow_query_ms = -1");
  MustQuery(db, "SELECT b FROM t1");
  QueryResult count = MustQuery(db, "SELECT COUNT(*) FROM born_slow_log");
  const int64_t logged = count.rows[0][0].AsInt();
  MustQuery(db, "SELECT b FROM t1");
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM born_slow_log")
                .rows[0][0]
                .AsInt(),
            logged);
}

TEST(SlowQueryLogTest, ThresholdFiltersFastStatements) {
  Database db;
  LoadFixture(&db);
  // An absurdly high threshold: nothing on this dataset crosses it.
  MustQuery(db, "SET born.slow_query_ms = 1000000");
  MustQuery(db, "SELECT a FROM t1");
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM born_slow_log")
                .rows[0][0]
                .AsInt(),
            0);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, StatementsRecordPhaseSpans) {
  Database db;
  LoadFixture(&db);
  db.trace().Clear();
  MustQuery(db, "SELECT a FROM t1 WHERE a = 2");
  std::vector<obs::StatementTrace> traces = db.trace().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const obs::StatementTrace& trace = traces[0];
  EXPECT_EQ(trace.statement, "SELECT a FROM t1 WHERE a = ?");
  EXPECT_EQ(trace.rows, 1u);
  EXPECT_FALSE(trace.error);
  std::vector<std::string> phases;
  size_t optimizer_spans = 0;
  for (const obs::TraceSpan& span : trace.spans) {
    if (std::string_view(span.category) == "optimizer") {
      ++optimizer_spans;
    } else {
      phases.push_back(span.name);
    }
    // Interval containment: every span lies inside its statement, which is
    // what gives chrome://tracing its nesting on a single track.
    EXPECT_GE(span.start_ns, trace.start_ns) << span.name;
    EXPECT_LE(span.start_ns + span.dur_ns, trace.start_ns + trace.dur_ns)
        << span.name;
  }
  EXPECT_EQ(phases, (std::vector<std::string>{"lex", "parse", "bind+plan",
                                              "execute"}));
  // The optimizer contributes one span per active rule.
  EXPECT_GE(optimizer_spans, 1u);
}

TEST(TraceTest, InstrumentedRunsAddOperatorSpans) {
  EngineConfig config;
  config.collect_exec_stats = true;
  Database db{config};
  LoadFixture(&db);
  db.trace().Clear();
  MustQuery(db, "SELECT a FROM t1");
  std::vector<obs::StatementTrace> traces = db.trace().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  size_t operator_spans = 0;
  for (const obs::TraceSpan& span : traces[0].spans) {
    if (std::string(span.category) == "operator") ++operator_spans;
  }
  // Project + SeqScan.
  EXPECT_EQ(operator_spans, 2u);
}

TEST(TraceTest, SetBornTraceZeroDisablesRecording) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SET born.trace = 0");
  db.trace().Clear();
  MustQuery(db, "SELECT a FROM t1");
  EXPECT_EQ(db.trace().size(), 0u);
  MustQuery(db, "SET born.trace = 1");
  MustQuery(db, "SELECT a FROM t1");
  EXPECT_EQ(db.trace().size(), 1u);
}

TEST(TraceTest, RingBufferEvictsOldest) {
  Database db;
  MustQuery(db, "SET born.trace_capacity = 2");
  db.trace().Clear();
  MustQuery(db, "SELECT 1");
  MustQuery(db, "SELECT 2");
  MustQuery(db, "SELECT 3");
  std::vector<obs::StatementTrace> traces = db.trace().Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  // Ids keep increasing across evictions; the oldest trace is gone.
  EXPECT_LT(traces[0].id, traces[1].id);
  EXPECT_EQ(traces[1].id, 4u);  // SET + three SELECTs
}

TEST(TraceTest, ChromeTraceJsonShape) {
  EngineConfig config;
  config.collect_exec_stats = true;
  Database db{config};
  LoadFixture(&db);
  db.trace().Clear();
  MustQuery(db, "SELECT a FROM t1 WHERE b = 'x'");
  const std::string json = db.TraceJson();
  // A trace_event JSON array of "X" complete events on one track, with the
  // statement event carrying args and literals normalized away.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 3), "\n]\n");
  EXPECT_NE(json.find("\"name\": \"SELECT a FROM t1 WHERE b = ?\""),
            std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"statement\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"operator\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 1, \"error\": false}"), std::string::npos);
  // The trace survives a JSON round trip in spirit: balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceTest, ExportTraceWritesLoadableFile) {
  Database db;
  MustQuery(db, "SELECT 42");
  const std::string path = ::testing::TempDir() + "bornsql_trace_test.json";
  BORNSQL_ASSERT_OK(db.ExportTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(content, db.TraceJson());
  EXPECT_NE(content.find("\"SELECT ?\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Statement normalization

TEST(SqlTextTest, FallbackKeysForPreparedStatements) {
  Database db;
  LoadFixture(&db);
  auto parsed = sql::ParseStatement("SELECT a FROM t1 WHERE a = 1");
  BORNSQL_ASSERT_OK(parsed.status());
  // ExecuteStatement has no statement text; executions aggregate under the
  // coarse prepared-statement key.
  for (int i = 0; i < 3; ++i) {
    auto result = db.ExecuteStatement(*parsed);
    BORNSQL_ASSERT_OK(result.status());
  }
  QueryResult stats = MustQuery(
      db,
      "SELECT calls FROM born_stat_statements "
      "WHERE query = '<prepared SELECT>'");
  ASSERT_EQ(stats.rows.size(), 1u);
  EXPECT_EQ(stats.rows[0][0].AsInt(), 3);
}

TEST(SqlTextTest, ScriptStatementsGetPerStatementKeys) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE s (v INTEGER); INSERT INTO s VALUES (1); "
      "INSERT INTO s VALUES (2);"));
  QueryResult stats = MustQuery(
      db,
      "SELECT calls FROM born_stat_statements "
      "WHERE query = 'INSERT INTO s VALUES (?)'");
  ASSERT_EQ(stats.rows.size(), 1u);
  EXPECT_EQ(stats.rows[0][0].AsInt(), 2);
}

}  // namespace
}  // namespace bornsql
