// Tests for the MADlib stand-ins: one-hot materialization (incl. the §5.1
// dense-blowup failure mode), LR, SVM, decision tree and the metrics.
#include <gtest/gtest.h>

#include "baselines/decision_tree.h"
#include "baselines/dense.h"
#include "baselines/linear_svm.h"
#include "baselines/logistic_regression.h"
#include "baselines/metrics.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace bornsql::baselines {
namespace {

// Nearly separable binary categorical data: column 0 is highly predictive,
// column 1 is noise.
struct Synthetic {
  std::vector<CategoricalRow> rows;
  std::vector<int> labels;
};

Synthetic MakeSeparable(uint64_t seed, size_t n, double noise = 0.05) {
  Rng rng(seed);
  Synthetic out;
  for (size_t i = 0; i < n; ++i) {
    int y = rng.Bernoulli(0.5) ? 1 : 0;
    std::string signal = rng.Bernoulli(noise) ? (y ? "no" : "yes")
                                              : (y ? "yes" : "no");
    std::string junk = rng.Bernoulli(0.5) ? "a" : "b";
    out.rows.push_back({signal, junk});
    out.labels.push_back(y);
  }
  return out;
}

TEST(OneHotEncoderTest, BuildsVocabulary) {
  OneHotEncoder enc({"c1", "c2"});
  BORNSQL_ASSERT_OK(enc.Fit({{"x", "p"}, {"y", "p"}, {"x", "q"}}));
  EXPECT_EQ(enc.feature_count(), 4u);  // c1=x, c1=y, c2=p, c2=q
}

TEST(OneHotEncoderTest, TransformsToDense) {
  OneHotEncoder enc({"c1"});
  BORNSQL_ASSERT_OK(enc.Fit({{"x"}, {"y"}}));
  auto data = enc.Transform({{"x"}, {"y"}, {"z"}}, {1, 0, 1});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 3u);
  EXPECT_EQ(data->num_features, 2u);
  EXPECT_DOUBLE_EQ(data->row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(data->row(0)[1], 0.0);
  // Unseen category "z": all zeros.
  EXPECT_DOUBLE_EQ(data->row(2)[0], 0.0);
  EXPECT_DOUBLE_EQ(data->row(2)[1], 0.0);
}

TEST(OneHotEncoderTest, RowArityChecked) {
  OneHotEncoder enc({"c1", "c2"});
  EXPECT_FALSE(enc.Fit({{"only-one"}}).ok());
}

TEST(OneHotEncoderTest, DenseBudgetRejectsHighDimensionalData) {
  // §5.1: 2M rows x 4M features of 4-byte ints = 32 TB. Our saturating
  // estimator and budget reproduce the rejection.
  size_t bytes = OneHotEncoder::EstimateDenseBytes(2000000, 4000000, 4);
  EXPECT_EQ(bytes, size_t{32} * 1000 * 1000 * 1000 * 1000);

  OneHotOptions options;
  options.max_dense_bytes = 1024;  // tiny budget
  OneHotEncoder enc({"c1"}, options);
  std::vector<CategoricalRow> rows(1000, CategoricalRow{"x"});
  BORNSQL_ASSERT_OK(enc.Fit(rows));
  auto result = enc.Transform(rows, std::vector<int>(1000, 0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(OneHotEncoderTest, EstimateSaturatesInsteadOfOverflowing) {
  size_t huge = OneHotEncoder::EstimateDenseBytes(
      size_t{1} << 40, size_t{1} << 40, 8);
  EXPECT_EQ(huge, std::numeric_limits<size_t>::max());
}

template <typename Classifier>
double TrainAndScore(uint64_t seed) {
  Synthetic train = MakeSeparable(seed, 800);
  Synthetic test = MakeSeparable(seed + 1, 400);
  OneHotEncoder enc({"signal", "junk"});
  EXPECT_TRUE(enc.Fit(train.rows).ok());
  auto train_data = enc.Transform(train.rows, train.labels);
  auto test_data = enc.Transform(test.rows, test.labels);
  EXPECT_TRUE(train_data.ok() && test_data.ok());
  Classifier clf;
  EXPECT_TRUE(clf.Train(*train_data).ok());
  auto metrics = ComputeMetrics(test.labels, clf.PredictAll(*test_data));
  EXPECT_TRUE(metrics.ok());
  return metrics->accuracy;
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  EXPECT_GT(TrainAndScore<LogisticRegression>(21), 0.9);
}

TEST(LinearSvmTest, LearnsSeparableData) {
  EXPECT_GT(TrainAndScore<LinearSvm>(22), 0.9);
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  EXPECT_GT(TrainAndScore<DecisionTree>(23), 0.9);
}

TEST(DecisionTreeTest, PureLeafStopsSplitting) {
  DenseDataset data;
  data.num_features = 1;
  data.x = {1.0, 1.0, 1.0};
  data.y = {1, 1, 1};
  DecisionTree tree;
  BORNSQL_ASSERT_OK(tree.Train(data));
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.Predict(data.row(0)), 1);
}

TEST(ClassifiersTest, EmptyDatasetRejected) {
  DenseDataset empty;
  EXPECT_FALSE(LogisticRegression().Train(empty).ok());
  EXPECT_FALSE(LinearSvm().Train(empty).ok());
  EXPECT_FALSE(DecisionTree().Train(empty).ok());
}

TEST(MetricsTest, PerfectPrediction) {
  auto m = ComputeMetrics({0, 1, 0, 1}, {0, 1, 0, 1});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m->macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(m->macro_recall, 1.0);
  EXPECT_DOUBLE_EQ(m->macro_f1, 1.0);
}

TEST(MetricsTest, HandComputedBinaryCase) {
  // y_true: 0 0 0 1 1 ; y_pred: 0 1 0 1 0
  // class1: tp=1 fp=1 fn=1 -> P=0.5 R=0.5 F1=0.5
  // class0: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3
  auto m = ComputeMetrics({0, 0, 0, 1, 1}, {0, 1, 0, 1, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->accuracy, 0.6, 1e-12);
  EXPECT_NEAR(m->macro_precision, (0.5 + 2.0 / 3.0) / 2, 1e-12);
  EXPECT_NEAR(m->macro_recall, (0.5 + 2.0 / 3.0) / 2, 1e-12);
  EXPECT_NEAR(m->macro_f1, (0.5 + 2.0 / 3.0) / 2, 1e-12);
}

TEST(MetricsTest, MacroAveragesOverTrueLabelsOnly) {
  // Label 7 never appears in y_true: it must not contribute a macro term,
  // even though it is predicted.
  auto m = ComputeMetrics({0, 0, 1}, {0, 7, 1});
  ASSERT_TRUE(m.ok());
  // class0: tp=1 fp=0 fn=1 -> P=1 R=0.5; class1: P=1 R=1.
  EXPECT_NEAR(m->macro_precision, 1.0, 1e-12);
  EXPECT_NEAR(m->macro_recall, 0.75, 1e-12);
}

TEST(MetricsTest, LengthMismatchRejected) {
  EXPECT_FALSE(ComputeMetrics({1}, {1, 0}).ok());
  EXPECT_FALSE(ComputeMetrics({}, {}).ok());
}

TEST(MetricsTest, ZeroDivisionConvention) {
  // Everything predicted 0; class 1 has no predicted positives.
  auto m = ComputeMetrics({0, 1}, {0, 0});
  ASSERT_TRUE(m.ok());
  // class0: P=0.5, R=1; class1: P=0 (zero-division), R=0.
  EXPECT_NEAR(m->macro_precision, 0.25, 1e-12);
  EXPECT_NEAR(m->macro_recall, 0.5, 1e-12);
}

}  // namespace
}  // namespace bornsql::baselines
