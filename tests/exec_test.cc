// Operator-level unit tests: each volcano operator driven directly,
// without the parser or planner.
#include "exec/operators.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/test_util.h"

namespace bornsql::exec {
namespace {

Schema OneCol(const char* qualifier, const char* name) {
  Schema s;
  s.Add(Column{qualifier, name, ValueType::kNull});
  return s;
}

Schema TwoCols(const char* qualifier, const char* a, const char* b) {
  Schema s;
  s.Add(Column{qualifier, a, ValueType::kNull});
  s.Add(Column{qualifier, b, ValueType::kNull});
  return s;
}

OperatorPtr Rows(Schema schema, std::vector<Row> rows) {
  auto data = std::make_shared<MaterializedResult>();
  data->schema = schema;
  data->rows = std::move(rows);
  return std::make_unique<MaterializedScanOp>(std::move(data),
                                              std::move(schema));
}

std::vector<Row> MustDrain(Operator& op) {
  auto result = Drain(op);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result->rows) : std::vector<Row>{};
}

TEST(ExecTest, SingleRowEmitsOnce) {
  SingleRowOp op;
  auto rows = MustDrain(op);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].empty());
}

TEST(ExecTest, FilterKeepsTruthyRows) {
  auto source = Rows(OneCol("t", "a"),
                     {{Value::Int(1)}, {Value::Int(0)}, {Value::Null()},
                      {Value::Int(5)}});
  FilterOp filter(std::move(source), BoundColumn(0));
  auto rows = MustDrain(filter);
  ASSERT_EQ(rows.size(), 2u);  // 0 is false, NULL is filtered
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[1][0].AsInt(), 5);
}

TEST(ExecTest, ProjectComputesExpressions) {
  auto source = Rows(OneCol("t", "a"), {{Value::Int(3)}});
  std::vector<BoundExprPtr> exprs;
  auto sum = std::make_unique<BoundExpr>();
  sum->kind = BoundKind::kBinary;
  sum->binary_op = BoundBinaryOp::kAdd;
  sum->children.push_back(BoundColumn(0));
  sum->children.push_back(BoundLiteral(Value::Int(10)));
  exprs.push_back(std::move(sum));
  ProjectOp project(std::move(source), std::move(exprs), OneCol("", "s"));
  auto rows = MustDrain(project);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 13);
}

std::vector<BoundExprPtr> Keys(size_t idx) {
  std::vector<BoundExprPtr> keys;
  keys.push_back(BoundColumn(idx));
  return keys;
}

TEST(ExecTest, HashJoinInnerMultiMatch) {
  auto left = Rows(TwoCols("l", "k", "v"),
                   {{Value::Int(1), Value::Text("a")},
                    {Value::Int(2), Value::Text("b")}});
  auto right = Rows(TwoCols("r", "k", "v"),
                    {{Value::Int(1), Value::Text("x")},
                     {Value::Int(1), Value::Text("y")},
                     {Value::Int(3), Value::Text("z")}});
  HashJoinOp join(std::move(left), std::move(right), Keys(0), Keys(0),
                  JoinType::kInner);
  auto rows = MustDrain(join);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][3].AsText(), "x");
  EXPECT_EQ(rows[1][3].AsText(), "y");
}

TEST(ExecTest, HashJoinLeftEmitsNullsOnce) {
  auto left = Rows(OneCol("l", "k"), {{Value::Int(1)}, {Value::Int(9)}});
  auto right = Rows(OneCol("r", "k"), {{Value::Int(1)}});
  HashJoinOp join(std::move(left), std::move(right), Keys(0), Keys(0),
                  JoinType::kLeft);
  auto rows = MustDrain(join);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsInt(), 1);
  EXPECT_TRUE(rows[1][1].is_null());
}

TEST(ExecTest, SortMergeJoinMatchesHashJoin) {
  std::vector<Row> lrows, rrows;
  for (int i = 0; i < 30; ++i) {
    lrows.push_back({Value::Int(i % 7), Value::Int(i)});
    rrows.push_back({Value::Int(i % 5), Value::Int(100 + i)});
  }
  HashJoinOp hash(Rows(TwoCols("l", "k", "v"), lrows),
                  Rows(TwoCols("r", "k", "v"), rrows), Keys(0), Keys(0),
                  JoinType::kInner);
  SortMergeJoinOp merge(Rows(TwoCols("l", "k", "v"), lrows),
                        Rows(TwoCols("r", "k", "v"), rrows), Keys(0),
                        Keys(0), JoinType::kInner);
  auto a = MustDrain(hash);
  auto b = MustDrain(merge);
  auto dump = [](std::vector<Row>& rows) {
    std::vector<std::string> out;
    for (Row& r : rows) {
      std::string line;
      for (Value& v : r) line += v.ToString() + "|";
      out.push_back(line);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(dump(a), dump(b));
}

TEST(ExecTest, NestedLoopCrossProduct) {
  auto left = Rows(OneCol("l", "a"), {{Value::Int(1)}, {Value::Int(2)}});
  auto right = Rows(OneCol("r", "b"), {{Value::Int(10)}, {Value::Int(20)},
                                       {Value::Int(30)}});
  NestedLoopJoinOp join(std::move(left), std::move(right), nullptr,
                        JoinType::kCross);
  EXPECT_EQ(MustDrain(join).size(), 6u);
}

TEST(ExecTest, IndexJoinProbesSecondaryIndex) {
  storage::Table table("w", TwoCols("w", "j", "v"), {});
  table.AppendUnchecked({Value::Text("a"), Value::Int(1)});
  table.AppendUnchecked({Value::Text("a"), Value::Int(2)});
  table.AppendUnchecked({Value::Text("b"), Value::Int(3)});
  size_t idx = table.AddSecondaryIndex({0});

  auto outer = Rows(OneCol("x", "j"), {{Value::Text("a")},
                                       {Value::Text("missing")}});
  IndexJoinOp join(std::move(outer), &table, table.schema(), idx, Keys(0),
                   /*inner_on_left=*/false);
  auto rows = MustDrain(join);
  ASSERT_EQ(rows.size(), 2u);  // 'a' matched twice, 'missing' none
  // Output layout: outer column then inner columns; match order within one
  // probe is unspecified (hash index), so compare as a set.
  std::set<int64_t> values;
  for (const Row& row : rows) {
    EXPECT_EQ(row[0].AsText(), "a");
    values.insert(row[2].AsInt());
  }
  EXPECT_EQ(values, (std::set<int64_t>{1, 2}));
}

TEST(ExecTest, IndexJoinInnerOnLeftSwapsSchema) {
  storage::Table table("w", OneCol("w", "j"), {});
  table.AppendUnchecked({Value::Text("a")});
  size_t idx = table.AddSecondaryIndex({0});
  auto outer = Rows(TwoCols("x", "j", "v"),
                    {{Value::Text("a"), Value::Int(7)}});
  IndexJoinOp join(std::move(outer), &table, table.schema(), idx, Keys(0),
                   /*inner_on_left=*/true);
  EXPECT_EQ(join.schema().column(0).qualifier, "w");
  auto rows = MustDrain(join);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsText(), "a");  // inner first
  EXPECT_EQ(rows[0][2].AsInt(), 7);     // outer after
}

TEST(ExecTest, HashAggGroupsAndAggregates) {
  auto source = Rows(TwoCols("t", "g", "v"),
                     {{Value::Int(1), Value::Int(10)},
                      {Value::Int(1), Value::Int(20)},
                      {Value::Int(2), Value::Int(5)}});
  std::vector<BoundExprPtr> groups;
  groups.push_back(BoundColumn(0));
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFunc::kSum, BoundColumn(1)});
  aggs.push_back(AggSpec{AggFunc::kCountStar, nullptr});
  Schema out = TwoCols("", "g", "s");
  out.Add(Column{"", "c", ValueType::kNull});
  HashAggOp agg(std::move(source), std::move(groups), std::move(aggs), out);
  auto rows = MustDrain(agg);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsInt(), 30);
  EXPECT_EQ(rows[0][2].AsInt(), 2);
  EXPECT_EQ(rows[1][1].AsInt(), 5);
}

TEST(ExecTest, GlobalAggOnEmptyInputYieldsOneRow) {
  auto source = Rows(OneCol("t", "v"), {});
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggFunc::kSum, BoundColumn(0)});
  HashAggOp agg(std::move(source), {}, std::move(aggs), OneCol("", "s"));
  auto rows = MustDrain(agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST(ExecTest, SortIsStable) {
  auto source = Rows(TwoCols("t", "k", "tag"),
                     {{Value::Int(2), Value::Text("first")},
                      {Value::Int(1), Value::Text("a")},
                      {Value::Int(2), Value::Text("second")}});
  std::vector<SortKey> keys;
  keys.push_back(SortKey{BoundColumn(0), false});
  SortOp sort(std::move(source), std::move(keys));
  auto rows = MustDrain(sort);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][1].AsText(), "first");
  EXPECT_EQ(rows[2][1].AsText(), "second");
}

TEST(ExecTest, LimitAndOffset) {
  std::vector<Row> input;
  for (int i = 0; i < 10; ++i) input.push_back({Value::Int(i)});
  LimitOp limit(Rows(OneCol("t", "v"), input), 3, 4);
  auto rows = MustDrain(limit);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(rows[2][0].AsInt(), 6);
}

TEST(ExecTest, DistinctComparesWholeRow) {
  auto source = Rows(TwoCols("t", "a", "b"),
                     {{Value::Int(1), Value::Int(1)},
                      {Value::Int(1), Value::Int(1)},
                      {Value::Int(1), Value::Int(2)},
                      {Value::Null(), Value::Null()},
                      {Value::Null(), Value::Null()}});
  DistinctOp distinct(std::move(source));
  // NULL rows deduplicate with each other (DISTINCT grouping semantics).
  EXPECT_EQ(MustDrain(distinct).size(), 3u);
}

TEST(ExecTest, UnionAllConcatenatesInOrder) {
  std::vector<OperatorPtr> children;
  children.push_back(Rows(OneCol("a", "v"), {{Value::Int(1)}}));
  children.push_back(Rows(OneCol("b", "v"), {{Value::Int(2)}}));
  UnionAllOp u(std::move(children));
  auto rows = MustDrain(u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[1][0].AsInt(), 2);
  // Union output is unqualified.
  EXPECT_EQ(u.schema().column(0).qualifier, "");
}

TEST(ExecTest, OperatorsAreReopenable) {
  auto source = Rows(OneCol("t", "v"), {{Value::Int(1)}, {Value::Int(2)}});
  FilterOp filter(std::move(source), BoundLiteral(Value::Bool(true)));
  EXPECT_EQ(MustDrain(filter).size(), 2u);
  EXPECT_EQ(MustDrain(filter).size(), 2u);  // Drain reopens
}

TEST(ExecTest, DebugStringsNameTheOperators) {
  auto source = Rows(OneCol("t", "v"), {});
  EXPECT_NE(source->DebugString().find("MaterializedScan"),
            std::string::npos);
  FilterOp filter(std::move(source), BoundLiteral(Value::Bool(true)));
  EXPECT_EQ(filter.DebugString(), "Filter");
  ASSERT_EQ(filter.children().size(), 1u);
}

}  // namespace
}  // namespace bornsql::exec
