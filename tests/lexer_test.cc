#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace bornsql::sql {
namespace {

std::vector<Token> MustLex(std::string_view s) {
  auto r = Lex(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputIsJustEof) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustLex("select SeLeCt SELECT");
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepSpelling) {
  auto tokens = MustLex("X_nj pubName");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "X_nj");
  EXPECT_EQ(tokens[1].text, "pubName");
}

TEST(LexerTest, FunctionNamesAreNotKeywords) {
  // POW/SUM/ROW_NUMBER must stay identifiers so they can be column names.
  auto tokens = MustLex("sum pow row_number count");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kIdentifier) << i;
  }
}

TEST(LexerTest, IntAndDoubleLiterals) {
  auto tokens = MustLex("42 1.5 2e3 7.25e-1 .5");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 1.5);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.725);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.5);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = MustLex("'it''s'");
  ASSERT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = MustLex("\"weird name\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("<> != <= >= || = < > + - * / %");
  EXPECT_EQ(tokens[0].type, TokenType::kNotEq);
  EXPECT_EQ(tokens[1].type, TokenType::kNotEq);
  EXPECT_EQ(tokens[2].type, TokenType::kLtEq);
  EXPECT_EQ(tokens[3].type, TokenType::kGtEq);
  EXPECT_EQ(tokens[4].type, TokenType::kConcat);
  EXPECT_EQ(tokens[5].type, TokenType::kEq);
  EXPECT_EQ(tokens[6].type, TokenType::kLt);
  EXPECT_EQ(tokens[7].type, TokenType::kGt);
  EXPECT_EQ(tokens[8].type, TokenType::kPlus);
  EXPECT_EQ(tokens[9].type, TokenType::kMinus);
  EXPECT_EQ(tokens[10].type, TokenType::kStar);
  EXPECT_EQ(tokens[11].type, TokenType::kSlash);
  EXPECT_EQ(tokens[12].type, TokenType::kPercent);
}

TEST(LexerTest, LineAndBlockComments) {
  auto tokens = MustLex("1 -- comment to end\n2 /* block\nspanning */ 3");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].int_value, 1);
  EXPECT_EQ(tokens[1].int_value, 2);
  EXPECT_EQ(tokens[2].int_value, 3);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("'abc").ok());
}

TEST(LexerTest, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(Lex("/* open").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("SELECT @x").ok());
}

TEST(LexerTest, OffsetsTrackSource) {
  auto tokens = MustLex("a  bb");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

}  // namespace
}  // namespace bornsql::sql
