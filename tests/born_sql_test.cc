// BornSqlClassifier tests: every capability of §3 executed end-to-end
// through the SQL engine, plus SQL ≡ in-memory-reference equivalence.
#include "born/born_sql.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "born/born_ref.h"
#include "common/rng.h"
#include "common/strings.h"
#include "tests/test_util.h"

namespace bornsql::born {
namespace {

using ::bornsql::testing::MustQuery;

// Random sparse dataset materialized both as SQL tables (items,
// item_feature) and as in-memory Examples.
struct TestData {
  std::vector<Example> examples;  // index i has n = i+1

  Status Load(engine::Database* db) const {
    BORNSQL_RETURN_IF_ERROR(db->ExecuteScript(
        "DROP TABLE IF EXISTS items; DROP TABLE IF EXISTS item_feature;"
        "CREATE TABLE items (n INTEGER PRIMARY KEY, k INTEGER, "
        "sw REAL);"
        "CREATE TABLE item_feature (n INTEGER, j TEXT, w REAL)"));
    BORNSQL_ASSIGN_OR_RETURN(storage::Table * items,
                             db->catalog().GetTable("items"));
    BORNSQL_ASSIGN_OR_RETURN(storage::Table * features,
                             db->catalog().GetTable("item_feature"));
    for (size_t i = 0; i < examples.size(); ++i) {
      const Example& ex = examples[i];
      BORNSQL_RETURN_IF_ERROR(
          items->Insert({Value::Int(static_cast<int64_t>(i) + 1),
                         ex.y[0].first, Value::Double(ex.sample_weight)}));
      for (const auto& [j, w] : ex.x) {
        features->AppendUnchecked({Value::Int(static_cast<int64_t>(i) + 1),
                                   Value::Text(j), Value::Double(w)});
      }
    }
    return Status::OK();
  }
};

TestData MakeData(uint64_t seed, int n_items, int n_classes, int vocab,
                  bool unit_weights = true) {
  Rng rng(seed);
  TestData data;
  for (int i = 0; i < n_items; ++i) {
    Example ex;
    // Distinct features per item (the SQL path would treat duplicate rows
    // additively just like the reference, but distinctness keeps the test
    // data clean).
    std::map<std::string, double> x;
    int n_features = 1 + static_cast<int>(rng.Uniform(5));
    for (int f = 0; f < n_features; ++f) {
      x[StrFormat("f%zu", rng.Uniform(vocab))] = 0.5 + rng.NextDouble() * 2.0;
    }
    ex.x.assign(x.begin(), x.end());
    ex.y.emplace_back(
        Value::Int(static_cast<int64_t>(rng.Uniform(n_classes))), 1.0);
    ex.sample_weight = unit_weights ? 1.0 : 0.5 + rng.NextDouble();
    data.examples.push_back(std::move(ex));
  }
  return data;
}

SqlSource Source(bool with_weights = false) {
  SqlSource source;
  source.x_parts = {"SELECT n, j, w FROM item_feature"};
  source.y = "SELECT n, k, 1.0 AS w FROM items";
  if (with_weights) source.w = "SELECT n, sw AS w FROM items";
  return source;
}

constexpr const char* kAllItems = "SELECT n FROM items";

class BornSqlTest : public ::testing::Test {
 protected:
  engine::Database db_;
};

TEST_F(BornSqlTest, FitPopulatesCorpus) {
  TestData data = MakeData(1, 40, 3, 12);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  auto entries = clf.CorpusEntries();
  ASSERT_TRUE(entries.ok());
  EXPECT_GT(*entries, 0);
  // The corpus table exists with the documented schema.
  auto r = MustQuery(db_, "SELECT j, k, w FROM m_corpus LIMIT 1");
  EXPECT_EQ(r.column_names.size(), 3u);
}

TEST_F(BornSqlTest, CorpusMatchesReferenceExactly) {
  TestData data = MakeData(2, 120, 3, 20, /*unit_weights=*/false);
  BORNSQL_ASSERT_OK(data.Load(&db_));

  BornSqlClassifier sql_clf(&db_, "m", Source(/*with_weights=*/true));
  BORNSQL_ASSERT_OK(sql_clf.Fit(kAllItems));

  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  auto rows = MustQuery(db_, "SELECT j, k, w FROM m_corpus");
  ASSERT_EQ(rows.rows.size(), ref.corpus_entries());
  for (const Row& row : rows.rows) {
    const std::string& j = row[0].AsText();
    double w = row[2].AsDouble();
    double expected = ref.corpus().at(j).at(row[1]);
    EXPECT_NEAR(w, expected, 1e-9 * (1 + std::abs(expected))) << j;
  }
}

TEST_F(BornSqlTest, PredictionsMatchReference) {
  TestData data = MakeData(3, 150, 3, 18);
  BORNSQL_ASSERT_OK(data.Load(&db_));

  BornSqlClassifier sql_clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(sql_clf.Fit(kAllItems));
  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  auto preds = sql_clf.Predict(kAllItems);
  ASSERT_TRUE(preds.ok()) << preds.status().ToString();
  ASSERT_EQ(preds->size(), data.examples.size());
  for (const SqlPrediction& p : *preds) {
    size_t idx = static_cast<size_t>(p.n.AsInt()) - 1;
    auto expected = ref.Predict(data.examples[idx].x);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Value::Compare(p.k, *expected), 0) << "item " << p.n.ToString();
  }
}

TEST_F(BornSqlTest, ProbabilitiesMatchReference) {
  TestData data = MakeData(4, 100, 4, 15);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier sql_clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(sql_clf.Fit(kAllItems));
  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  auto probas = sql_clf.PredictProba("SELECT n FROM items WHERE n <= 25");
  ASSERT_TRUE(probas.ok()) << probas.status().ToString();
  ASSERT_GT(probas->size(), 0u);
  std::map<int64_t, double> totals;
  for (const SqlProbability& p : *probas) {
    size_t idx = static_cast<size_t>(p.n.AsInt()) - 1;
    auto expected = ref.PredictProba(data.examples[idx].x);
    ASSERT_TRUE(expected.ok());
    double want = 0.0;
    for (const auto& [k, v] : *expected) {
      if (Value::Compare(k, p.k) == 0) want = v;
    }
    EXPECT_NEAR(p.p, want, 1e-7) << "item " << p.n.ToString();
    totals[p.n.AsInt()] += p.p;
  }
  for (const auto& [n, total] : totals) {
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST_F(BornSqlTest, PartialFitEqualsBatchFit) {
  TestData data = MakeData(5, 90, 3, 14);
  BORNSQL_ASSERT_OK(data.Load(&db_));

  BornSqlClassifier batch(&db_, "batch", Source());
  BORNSQL_ASSERT_OK(batch.Fit(kAllItems));

  BornSqlClassifier inc(&db_, "inc", Source());
  BORNSQL_ASSERT_OK(inc.PartialFit("SELECT n FROM items WHERE n % 3 = 0"));
  BORNSQL_ASSERT_OK(inc.PartialFit("SELECT n FROM items WHERE n % 3 = 1"));
  BORNSQL_ASSERT_OK(inc.PartialFit("SELECT n FROM items WHERE n % 3 = 2"));

  // Def. 2.1 at the SQL level: join the two corpora and compare.
  auto diff = MustQuery(
      db_,
      "SELECT COUNT(*) FROM batch_corpus AS b, inc_corpus AS i "
      "WHERE b.j = i.j AND b.k = i.k AND ABS(b.w - i.w) > 1e-9");
  EXPECT_EQ(diff.rows[0][0].AsInt(), 0);
  auto ca = MustQuery(db_, "SELECT COUNT(*) FROM batch_corpus");
  auto cb = MustQuery(db_, "SELECT COUNT(*) FROM inc_corpus");
  EXPECT_EQ(ca.rows[0][0].AsInt(), cb.rows[0][0].AsInt());
}

TEST_F(BornSqlTest, UnlearningEqualsRetraining) {
  TestData data = MakeData(6, 80, 2, 10);
  BORNSQL_ASSERT_OK(data.Load(&db_));

  BornSqlClassifier full(&db_, "full", Source());
  BORNSQL_ASSERT_OK(full.Fit(kAllItems));
  BORNSQL_ASSERT_OK(full.Unlearn("SELECT n FROM items WHERE n % 4 = 0"));

  BornSqlClassifier retrained(&db_, "re", Source());
  BORNSQL_ASSERT_OK(retrained.Fit("SELECT n FROM items WHERE n % 4 <> 0"));

  auto pu = full.PredictProba(kAllItems);
  auto pr = retrained.PredictProba(kAllItems);
  ASSERT_TRUE(pu.ok() && pr.ok());
  ASSERT_EQ(pu->size(), pr->size());
  for (size_t i = 0; i < pu->size(); ++i) {
    EXPECT_EQ(Value::Compare((*pu)[i].n, (*pr)[i].n), 0);
    EXPECT_EQ(Value::Compare((*pu)[i].k, (*pr)[i].k), 0);
    EXPECT_NEAR((*pu)[i].p, (*pr)[i].p, 1e-7);
  }
}

TEST_F(BornSqlTest, WeightedUnlearningRemovesWeightedItems) {
  TestData data = MakeData(7, 60, 2, 8, /*unit_weights=*/false);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source(/*with_weights=*/true));
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BORNSQL_ASSERT_OK(clf.Unlearn(kAllItems));
  // Everything unlearned: residual mass ~ 0 on every corpus row.
  auto residue = MustQuery(db_,
                           "SELECT COUNT(*) FROM m_corpus WHERE "
                           "ABS(w) > 1e-9");
  EXPECT_EQ(residue.rows[0][0].AsInt(), 0);
}

TEST_F(BornSqlTest, DeploymentPreservesPredictions) {
  TestData data = MakeData(8, 120, 3, 16);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));

  auto before = clf.PredictProba("SELECT n FROM items WHERE n <= 30");
  ASSERT_TRUE(before.ok());
  BORNSQL_ASSERT_OK(clf.Deploy());
  EXPECT_TRUE(clf.deployed());
  auto after = clf.PredictProba("SELECT n FROM items WHERE n <= 30");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_NEAR((*before)[i].p, (*after)[i].p, 1e-9);
  }
  // The weights table is materialized and indexed.
  auto weights = MustQuery(db_, "SELECT COUNT(*) FROM m_weights");
  EXPECT_GT(weights.rows[0][0].AsInt(), 0);
}

TEST_F(BornSqlTest, DeployedWeightsMatchReference) {
  TestData data = MakeData(9, 100, 3, 12);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BORNSQL_ASSERT_OK(clf.Deploy());

  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));
  auto expected = ref.ExplainGlobal(0);
  ASSERT_TRUE(expected.ok());
  std::map<std::pair<std::string, int64_t>, double> want;
  for (const auto& e : *expected) want[{e.j, e.k.AsInt()}] = e.w;

  auto rows = MustQuery(db_, "SELECT j, k, w FROM m_weights");
  ASSERT_EQ(rows.rows.size(), want.size());
  for (const Row& row : rows.rows) {
    auto it = want.find({row[0].AsText(), row[1].AsInt()});
    ASSERT_NE(it, want.end()) << row[0].AsText();
    EXPECT_NEAR(row[2].AsDouble(), it->second,
                1e-9 * (1 + std::abs(it->second)));
  }
}

TEST_F(BornSqlTest, ExplainLocalMatchesReference) {
  TestData data = MakeData(10, 80, 3, 10);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  auto sql_local = clf.ExplainLocal("SELECT n FROM items WHERE n = 13", 0);
  ASSERT_TRUE(sql_local.ok()) << sql_local.status().ToString();
  Example item13 = data.examples[12];
  auto ref_local = ref.ExplainLocal({item13}, 0);
  ASSERT_TRUE(ref_local.ok());
  ASSERT_EQ(sql_local->size(), ref_local->size());
  std::map<std::pair<std::string, int64_t>, double> want;
  for (const auto& e : *ref_local) want[{e.j, e.k.AsInt()}] = e.w;
  for (const auto& e : *sql_local) {
    auto it = want.find({e.j, e.k.AsInt()});
    ASSERT_NE(it, want.end());
    EXPECT_NEAR(e.w, it->second, 1e-9 * (1 + std::abs(it->second)));
  }
}

TEST_F(BornSqlTest, HyperparamSweepMatchesReference) {
  TestData data = MakeData(11, 70, 3, 10);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  const Hyperparams grid[] = {
      {0.5, 1.0, 1.0}, {1.0, 1.0, 0.0}, {0.5, 0.5, 1.0},
      {2.0, 0.0, 2.0}, {0.25, 1.0, 0.5},
  };
  for (const Hyperparams& hp : grid) {
    BORNSQL_ASSERT_OK(clf.SetParams(hp));
    ref.set_params(hp);
    auto sql_p = clf.PredictProba("SELECT n FROM items WHERE n <= 10");
    ASSERT_TRUE(sql_p.ok()) << sql_p.status().ToString();
    for (const SqlProbability& p : *sql_p) {
      auto want = ref.PredictProba(data.examples[p.n.AsInt() - 1].x);
      ASSERT_TRUE(want.ok());
      double expected = 0.0;
      for (const auto& [k, v] : *want) {
        if (Value::Compare(k, p.k) == 0) expected = v;
      }
      EXPECT_NEAR(p.p, expected, 1e-7)
          << "a=" << hp.a << " b=" << hp.b << " h=" << hp.h;
    }
  }
}

TEST_F(BornSqlTest, MultipleModelsCoexist) {
  TestData data = MakeData(12, 50, 2, 8);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier m1(&db_, "alpha", Source());
  BornSqlClassifier m2(&db_, "beta", Source(), Hyperparams{1.0, 0.5, 0.0});
  BORNSQL_ASSERT_OK(m1.Fit("SELECT n FROM items WHERE n <= 25"));
  BORNSQL_ASSERT_OK(m2.Fit("SELECT n FROM items WHERE n > 25"));
  auto c1 = m1.CorpusEntries();
  auto c2 = m2.CorpusEntries();
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_GT(*c1, 0);
  EXPECT_GT(*c2, 0);
  // Both rows live in the shared params table.
  auto params = MustQuery(db_, "SELECT COUNT(*) FROM params");
  EXPECT_EQ(params.rows[0][0].AsInt(), 2);
}

TEST_F(BornSqlTest, InvalidModelNameRejected) {
  TestData data = MakeData(13, 5, 2, 4);
  BORNSQL_ASSERT_OK(data.Load(&db_));
  BornSqlClassifier clf(&db_, "bad name; DROP TABLE items", Source());
  EXPECT_FALSE(clf.Fit(kAllItems).ok());
}

TEST_F(BornSqlTest, EmptySourceRejected) {
  BornSqlClassifier clf(&db_, "m", SqlSource{});
  EXPECT_FALSE(clf.Fit(kAllItems).ok());
}

TEST_F(BornSqlTest, GeneratedSqlMirrorsPaperListings) {
  BornSqlClassifier clf(&db_, "m", Source());
  std::string fit = clf.BuildFitSql(kAllItems, false);
  EXPECT_NE(fit.find("ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + "
                     "excluded.w"),
            std::string::npos);
  EXPECT_NE(fit.find("GROUP BY XY_njk.j, XY_njk.k"), std::string::npos);
  std::string predict = clf.BuildPredictSql(kAllItems);
  EXPECT_NE(predict.find("ROW_NUMBER() OVER(PARTITION BY n ORDER BY w DESC"),
            std::string::npos);
  std::string deploy = clf.BuildDeploySql();
  EXPECT_NE(deploy.find("POW(P_k.w, b) * POW(P_j.w, 1 - b)"),
            std::string::npos);
}

// Equivalence must hold under every engine configuration.
class BornSqlConfigTest
    : public ::testing::TestWithParam<engine::EngineConfig> {};

TEST_P(BornSqlConfigTest, SqlEqualsReferenceUnderAllConfigs) {
  engine::Database db{GetParam()};
  TestData data = MakeData(99, 60, 3, 10);
  BORNSQL_ASSERT_OK(data.Load(&db));
  BornSqlClassifier clf(&db, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BornClassifierRef ref;
  BORNSQL_ASSERT_OK(ref.Fit(data.examples));

  auto preds = clf.Predict("SELECT n FROM items WHERE n <= 20");
  ASSERT_TRUE(preds.ok()) << preds.status().ToString();
  ASSERT_EQ(preds->size(), 20u);
  for (const SqlPrediction& p : *preds) {
    auto want = ref.Predict(data.examples[p.n.AsInt() - 1].x);
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(Value::Compare(p.k, *want), 0);
  }
}

engine::EngineConfig Config(engine::JoinStrategy js, bool mat_ctes,
                            bool index_joins) {
  engine::EngineConfig config;
  config.join_strategy = js;
  config.materialize_ctes = mat_ctes;
  config.use_index_joins = index_joins;
  return config;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BornSqlConfigTest,
    ::testing::Values(
        Config(engine::JoinStrategy::kHash, true, true),
        Config(engine::JoinStrategy::kHash, true, false),
        Config(engine::JoinStrategy::kHash, false, true),
        Config(engine::JoinStrategy::kSortMerge, true, false),
        Config(engine::JoinStrategy::kSortMerge, false, false)));

}  // namespace
}  // namespace bornsql::born
