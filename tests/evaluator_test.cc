// Expression evaluation edge cases, driven through parse+bind+eval over a
// one-row schema so SQL-level semantics (NULL propagation, coercions,
// three-valued logic) are exercised exactly as the engine sees them.
#include "exec/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "engine/binder.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace bornsql::exec {
namespace {

// Evaluates a SQL expression over a row with columns i=1, d=2.5, s='txt',
// z=NULL.
Result<Value> EvalSql(const std::string& expr_sql) {
  Schema schema;
  schema.Add(Column{"t", "i", ValueType::kInt});
  schema.Add(Column{"t", "d", ValueType::kDouble});
  schema.Add(Column{"t", "s", ValueType::kText});
  schema.Add(Column{"t", "z", ValueType::kNull});
  Row row = {Value::Int(1), Value::Double(2.5), Value::Text("txt"),
             Value::Null()};
  BORNSQL_ASSIGN_OR_RETURN(sql::ExprPtr parsed,
                           sql::ParseExpression(expr_sql));
  BORNSQL_ASSIGN_OR_RETURN(BoundExprPtr bound,
                           engine::BindExpr(*parsed, schema));
  return Eval(*bound, row);
}

Value MustEval(const std::string& expr_sql) {
  auto v = EvalSql(expr_sql);
  EXPECT_TRUE(v.ok()) << expr_sql << ": " << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

TEST(EvaluatorTest, ArithmeticTypePromotion) {
  EXPECT_TRUE(MustEval("i + 1").is_int());
  EXPECT_TRUE(MustEval("i + d").is_double());
  EXPECT_DOUBLE_EQ(MustEval("i + d").AsDouble(), 3.5);
  EXPECT_TRUE(MustEval("i * 2").is_int());
  EXPECT_DOUBLE_EQ(MustEval("d * d").AsDouble(), 6.25);
}

TEST(EvaluatorTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(MustEval("z + 1").is_null());
  EXPECT_TRUE(MustEval("z * d").is_null());
  EXPECT_TRUE(MustEval("-z").is_null());
  EXPECT_TRUE(MustEval("z || 'a'").is_null());
}

TEST(EvaluatorTest, ComparisonsWithNullAreNull) {
  EXPECT_TRUE(MustEval("z = 1").is_null());
  EXPECT_TRUE(MustEval("z <> z").is_null());
  EXPECT_TRUE(MustEval("z < 5").is_null());
}

TEST(EvaluatorTest, ThreeValuedAndOr) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  EXPECT_EQ(MustEval("(1 = 2) AND (z = 1)").AsInt(), 0);
  EXPECT_TRUE(MustEval("(1 = 1) AND (z = 1)").is_null());
  // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
  EXPECT_EQ(MustEval("(1 = 1) OR (z = 1)").AsInt(), 1);
  EXPECT_TRUE(MustEval("(1 = 2) OR (z = 1)").is_null());
}

TEST(EvaluatorTest, ShortCircuitSkipsErrors) {
  // The right side would be a type error, but the left side decides.
  EXPECT_EQ(MustEval("(1 = 2) AND (s + 1 > 0)").AsInt(), 0);
  EXPECT_EQ(MustEval("(1 = 1) OR (s + 1 > 0)").AsInt(), 1);
}

TEST(EvaluatorTest, TextArithmeticIsAnError) {
  EXPECT_FALSE(EvalSql("s + 1").ok());
  EXPECT_FALSE(EvalSql("-s").ok());
}

TEST(EvaluatorTest, ConcatCoercesNumbers) {
  EXPECT_EQ(MustEval("'n=' || i").AsText(), "n=1");
  EXPECT_EQ(MustEval("s || '!' ").AsText(), "txt!");
}

TEST(EvaluatorTest, NumericComparisonCrossType) {
  EXPECT_EQ(MustEval("1 = 1.0").AsInt(), 1);
  EXPECT_EQ(MustEval("i < d").AsInt(), 1);
  EXPECT_EQ(MustEval("2.5 >= d").AsInt(), 1);
}

TEST(EvaluatorTest, IsNullNeverReturnsNull) {
  EXPECT_EQ(MustEval("z IS NULL").AsInt(), 1);
  EXPECT_EQ(MustEval("i IS NULL").AsInt(), 0);
  EXPECT_EQ(MustEval("z IS NOT NULL").AsInt(), 0);
}

TEST(EvaluatorTest, InListWithNullMember) {
  EXPECT_EQ(MustEval("1 IN (1, z)").AsInt(), 1);    // found: true
  EXPECT_TRUE(MustEval("5 IN (1, z)").is_null());   // miss + NULL: NULL
  EXPECT_TRUE(MustEval("5 NOT IN (1, z)").is_null());
  EXPECT_EQ(MustEval("5 NOT IN (1, 2)").AsInt(), 1);
}

TEST(EvaluatorTest, CaseFallsThroughToElseOrNull) {
  EXPECT_EQ(MustEval("CASE WHEN i = 2 THEN 'a' ELSE 'b' END").AsText(), "b");
  EXPECT_TRUE(MustEval("CASE WHEN i = 2 THEN 'a' END").is_null());
  // NULL condition is not truthy.
  EXPECT_EQ(MustEval("CASE WHEN z THEN 'a' ELSE 'b' END").AsText(), "b");
}

TEST(EvaluatorTest, MathFunctionEdgeCases) {
  EXPECT_DOUBLE_EQ(MustEval("POW(0, 0)").AsDouble(), 1.0);
  EXPECT_TRUE(MustEval("POW(-1, 0.5)").is_null());  // NaN -> NULL
  EXPECT_TRUE(MustEval("SQRT(-1)").is_null());
  EXPECT_TRUE(MustEval("EXP(10000)").is_null());    // overflow -> NULL
  EXPECT_EQ(MustEval("FLOOR(2.7)").AsInt(), 2);
  EXPECT_EQ(MustEval("CEIL(2.1)").AsInt(), 3);
  EXPECT_DOUBLE_EQ(MustEval("ROUND(2.456, 2)").AsDouble(), 2.46);
  EXPECT_EQ(MustEval("SIGN(-3.5)").AsInt(), -1);
  EXPECT_EQ(MustEval("MOD(7, 3)").AsInt(), 1);
}

TEST(EvaluatorTest, StringFunctionEdgeCases) {
  EXPECT_EQ(MustEval("SUBSTR('hello', 2, 3)").AsText(), "ell");
  EXPECT_EQ(MustEval("SUBSTR('hello', 99)").AsText(), "");
  EXPECT_EQ(MustEval("SUBSTR('hello', 1, 0)").AsText(), "");
  EXPECT_EQ(MustEval("UPPER(s)").AsText(), "TXT");
  EXPECT_EQ(MustEval("LENGTH('')").AsInt(), 0);
  EXPECT_EQ(MustEval("REPLACE('aaa', 'a', 'bb')").AsText(), "bbbbbb");
  EXPECT_EQ(MustEval("REPLACE('abc', '', 'x')").AsText(), "abc");
  EXPECT_EQ(MustEval("NULLIF(1, 1)").type(), ValueType::kNull);
  EXPECT_EQ(MustEval("NULLIF(1, 2)").AsInt(), 1);
}

TEST(EvaluatorTest, CoalesceShortCircuits) {
  // Later arguments are not evaluated once a non-NULL is found: a type
  // error in the tail is never reached.
  EXPECT_EQ(MustEval("COALESCE(1, s + 1)").AsInt(), 1);
  EXPECT_EQ(MustEval("COALESCE(z, z, 9)").AsInt(), 9);
}

TEST(EvaluatorTest, CastSemantics) {
  EXPECT_EQ(MustEval("CAST('42' AS INTEGER)").AsInt(), 42);
  EXPECT_EQ(MustEval("CAST(2.9 AS INTEGER)").AsInt(), 2);
  EXPECT_EQ(MustEval("CAST(7 AS TEXT)").AsText(), "7");
  EXPECT_TRUE(MustEval("CAST(z AS INTEGER)").is_null());
  EXPECT_FALSE(EvalSql("CAST('abc' AS INTEGER)").ok());
}

TEST(EvaluatorTest, LikePatterns) {
  EXPECT_EQ(MustEval("'abstract:robot' LIKE 'abstract:%'").AsInt(), 1);
  EXPECT_EQ(MustEval("'abc' LIKE 'a_c'").AsInt(), 1);
  EXPECT_EQ(MustEval("'abc' LIKE 'a_d'").AsInt(), 0);
  EXPECT_EQ(MustEval("'' LIKE '%'").AsInt(), 1);
  EXPECT_EQ(MustEval("'xx' LIKE ''").AsInt(), 0);
  EXPECT_EQ(MustEval("'a%b' LIKE '%\%%'").AsInt(), 1);  // % matches anything
  EXPECT_TRUE(MustEval("z LIKE '%'").is_null());
}

TEST(EvaluatorTest, LikeMatchDirect) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("aaab", "%ab"));  // backtracking
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
  EXPECT_TRUE(LikeMatch("", ""));
}

TEST(EvaluatorTest, IntegerDivisionTruncatesTowardZero) {
  EXPECT_EQ(MustEval("7 / 2").AsInt(), 3);
  EXPECT_EQ(MustEval("-7 / 2").AsInt(), -3);
  EXPECT_EQ(MustEval("1702 / 100").AsInt(), 17);
}

TEST(EvaluatorTest, IsConstExprDetectsColumns) {
  auto col = BoundColumn(0);
  EXPECT_FALSE(IsConstExpr(*col));
  auto lit = BoundLiteral(Value::Int(1));
  EXPECT_TRUE(IsConstExpr(*lit));
}

TEST(EvaluatorTest, BetweenDesugar) {
  EXPECT_EQ(MustEval("i BETWEEN 0 AND 2").AsInt(), 1);
  EXPECT_EQ(MustEval("i BETWEEN 2 AND 5").AsInt(), 0);
  EXPECT_EQ(MustEval("i NOT BETWEEN 2 AND 5").AsInt(), 1);
}

}  // namespace
}  // namespace bornsql::exec
