// Golden plan snapshots: EXPLAIN LOGICAL + EXPLAIN for every statement the
// BornSQL driver generates, across the 3 join strategies x 2 CTE modes.
// Goldens live in tests/goldens/plans_<config>.txt; regenerate them with
//
//   BORNSQL_UPDATE_GOLDENS=1 ./tests/plan_snapshot_test
//
// after an intentional planner/optimizer change, and review the diff like
// any other code change. The suite also cross-checks that the driver's
// statements return identical results under all six configurations.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "born/born_sql.h"
#include "engine/database.h"
#include "tests/test_util.h"

#ifndef BORNSQL_GOLDEN_DIR
#define BORNSQL_GOLDEN_DIR "tests/goldens"
#endif

namespace bornsql {
namespace {

using engine::Database;
using engine::EngineConfig;
using engine::JoinStrategy;
using engine::QueryResult;
using bornsql::testing::MustQuery;
using bornsql::testing::RowStrings;

constexpr const char* kAllItems = "SELECT n FROM items";

struct Config {
  JoinStrategy join;
  bool materialize;
  const char* name;
};

const Config kConfigs[] = {
    {JoinStrategy::kHash, true, "hash_materialized"},
    {JoinStrategy::kHash, false, "hash_inlined"},
    {JoinStrategy::kSortMerge, true, "sortmerge_materialized"},
    {JoinStrategy::kSortMerge, false, "sortmerge_inlined"},
    {JoinStrategy::kNestedLoop, true, "nestedloop_materialized"},
    {JoinStrategy::kNestedLoop, false, "nestedloop_inlined"},
};

void LoadFixture(Database* db) {
  BORNSQL_ASSERT_OK(db->ExecuteScript(
      "CREATE TABLE items (n INTEGER PRIMARY KEY, k INTEGER);"
      "CREATE TABLE item_feature (n INTEGER, j TEXT, w REAL);"
      "INSERT INTO items VALUES (1, 0), (2, 1), (3, 0), (4, 1), "
      "(5, 0), (6, 1);"
      "INSERT INTO item_feature VALUES "
      "(1,'a',1.0),(1,'b',1.0),(2,'c',1.0),(2,'d',1.0),"
      "(3,'a',1.0),(3,'e',1.0),(4,'c',1.0),(4,'f',1.0),"
      "(5,'b',1.0),(5,'e',1.0),(6,'d',1.0),(6,'f',1.0)"));
}

born::SqlSource Source() {
  born::SqlSource source;
  source.x_parts = {"SELECT n, j, w FROM item_feature"};
  source.y = "SELECT n, k, 1.0 AS w FROM items";
  return source;
}

// Every SQL statement the driver generates, by stable snapshot name. The
// classifier is fitted and deployed first so every referenced table exists.
std::vector<std::pair<std::string, std::string>> DriverStatements(
    born::BornSqlClassifier* clf) {
  return {
      {"fit", clf->BuildFitSql(kAllItems, /*unlearn=*/false)},
      {"unlearn", clf->BuildFitSql(kAllItems, /*unlearn=*/true)},
      {"deploy", clf->BuildDeploySql()},
      {"predict", clf->BuildPredictSql(kAllItems)},
      {"predict_proba", clf->BuildPredictProbaSql(kAllItems)},
      {"explain_global", clf->BuildExplainGlobalSql(/*limit=*/10)},
      {"explain_local", clf->BuildExplainLocalSql(kAllItems, /*limit=*/10)},
  };
}

std::string Snapshot(Database& db, born::BornSqlClassifier* clf) {
  std::string out;
  for (const auto& [name, sql] : DriverStatements(clf)) {
    out += "== " + name + " ==\n";
    out += "-- EXPLAIN LOGICAL --\n";
    for (const Row& row : MustQuery(db, "EXPLAIN LOGICAL " + sql).rows) {
      out += row[0].AsText() + "\n";
    }
    out += "-- EXPLAIN --\n";
    for (const Row& row : MustQuery(db, "EXPLAIN " + sql).rows) {
      out += row[0].AsText() + "\n";
    }
  }
  return out;
}

std::string GoldenPath(const std::string& config) {
  return std::string(BORNSQL_GOLDEN_DIR) + "/plans_" + config + ".txt";
}

bool UpdateGoldens() {
  const char* env = std::getenv("BORNSQL_UPDATE_GOLDENS");
  return env != nullptr && std::string(env) == "1";
}

// Line number of the first difference, for a readable failure message.
std::string FirstDiff(const std::string& expected, const std::string& got) {
  std::istringstream e(expected);
  std::istringstream g(got);
  std::string el;
  std::string gl;
  size_t line = 0;
  while (true) {
    ++line;
    const bool he = static_cast<bool>(std::getline(e, el));
    const bool hg = static_cast<bool>(std::getline(g, gl));
    if (!he && !hg) return "identical";
    if (el != gl || he != hg) {
      return "line " + std::to_string(line) + ":\n  golden: " +
             (he ? el : "<eof>") + "\n  actual: " + (hg ? gl : "<eof>");
    }
  }
}

class PlanSnapshotTest : public ::testing::TestWithParam<Config> {};

TEST_P(PlanSnapshotTest, DriverPlansMatchGolden) {
  const Config& config = GetParam();
  EngineConfig engine_config;
  engine_config.join_strategy = config.join;
  engine_config.materialize_ctes = config.materialize;
  Database db(engine_config);
  LoadFixture(&db);
  born::BornSqlClassifier clf(&db, "m", Source());
  BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
  BORNSQL_ASSERT_OK(clf.Deploy());

  const std::string actual = Snapshot(db, &clf);
  const std::string path = GoldenPath(config.name);
  if (UpdateGoldens()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — run with BORNSQL_UPDATE_GOLDENS=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();
  EXPECT_EQ(expected, actual)
      << "plan snapshot drifted for config " << config.name
      << " — first difference at " << FirstDiff(expected, actual)
      << "\nIf the change is intentional, regenerate with "
         "BORNSQL_UPDATE_GOLDENS=1 and commit the diff.";
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PlanSnapshotTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Result equivalence: the plans differ per config, the answers must not.

TEST(PlanSnapshotEquivalenceTest, DriverResultsIdenticalAcrossAllConfigs) {
  std::vector<std::string> reference_predict;
  std::vector<std::string> reference_proba;
  for (const Config& config : kConfigs) {
    EngineConfig engine_config;
    engine_config.join_strategy = config.join;
    engine_config.materialize_ctes = config.materialize;
    Database db(engine_config);
    LoadFixture(&db);
    born::BornSqlClassifier clf(&db, "m", Source());
    BORNSQL_ASSERT_OK(clf.Fit(kAllItems));
    BORNSQL_ASSERT_OK(clf.Deploy());
    const auto predict =
        RowStrings(MustQuery(db, clf.BuildPredictSql(kAllItems)));
    const auto proba =
        RowStrings(MustQuery(db, clf.BuildPredictProbaSql(kAllItems)));
    if (reference_predict.empty()) {
      reference_predict = predict;
      reference_proba = proba;
      ASSERT_FALSE(reference_predict.empty());
      continue;
    }
    EXPECT_EQ(predict, reference_predict) << config.name;
    EXPECT_EQ(proba, reference_proba) << config.name;
  }
}

}  // namespace
}  // namespace bornsql
