// Tests for the observability subsystem: EXPLAIN / EXPLAIN ANALYZE output
// shape (golden, with volatile timings masked), the MetricsRegistry, and
// ExecuteProfiled. Also covers QueryResult::ScalarValue's error message.
#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "obs/metrics.h"
#include "obs/plan_stats.h"
#include "obs/stats.h"
#include "obs/statement_stats.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

using engine::Database;
using engine::EngineConfig;
using engine::JoinStrategy;
using engine::QueryResult;
using bornsql::testing::MustQuery;

// EXPLAIN [ANALYZE] output as lines with the volatile wall times and byte
// counts masked: "time=0.123ms" -> "time=Xms", "mem=1234" -> "mem=X"
// (ApproxRowBytes depends on sizeof(Value), which varies by platform).
// Everything else (rows, next, peak, shape) is deterministic for a fixed
// dataset.
std::vector<std::string> MaskedPlanLines(Database& db,
                                         const std::string& sql) {
  QueryResult result = MustQuery(db, sql);
  EXPECT_EQ(result.column_names, std::vector<std::string>{"plan"});
  static const std::regex kTime("time=[0-9.]+ms");
  static const std::regex kMem("mem=[0-9]+");
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    std::string line =
        std::regex_replace(row[0].AsText(), kTime, "time=Xms");
    out.push_back(std::regex_replace(line, kMem, "mem=X"));
  }
  return out;
}

// Two small joinable tables: t1 has 4 rows, t2 has 3 (two of which match).
void LoadJoinFixture(Database* db) {
  BORNSQL_ASSERT_OK(db->ExecuteScript(
      "CREATE TABLE t1 (a INTEGER, b TEXT);"
      "INSERT INTO t1 VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w');"
      "CREATE TABLE t2 (a INTEGER, c INTEGER);"
      "INSERT INTO t2 VALUES (2,20),(3,30),(9,90);"));
}

constexpr char kJoinSql[] =
    "SELECT t1.b, t2.c FROM t1 JOIN t2 ON t1.a = t2.a";

TEST(ExplainGoldenTest, SelectWithHashJoin) {
  Database db;  // default config: hash joins
  LoadJoinFixture(&db);
  std::vector<std::string> expected = {
      "Project(2 columns)",
      "  HashJoin(inner, 1 keys)",
      "    SeqScan(t1, 4 rows)",
      "    SeqScan(t2, 3 rows)",
  };
  EXPECT_EQ(MaskedPlanLines(db, std::string("EXPLAIN ") + kJoinSql),
            expected);
}

TEST(ExplainGoldenTest, AnalyzeSelectWithHashJoin) {
  Database db;
  LoadJoinFixture(&db);
  // HashJoin builds on the right input (3 rows) and emits 2 matches.
  std::vector<std::string> expected = {
      "Project(2 columns)  (actual rows=2 next=3 time=Xms)",
      "  HashJoin(inner, 1 keys)  "
      "(actual rows=2 next=3 time=Xms peak=3 mem=X)",
      "    SeqScan(t1, 4 rows)  (actual rows=4 next=5 time=Xms)",
      "    SeqScan(t2, 3 rows)  (actual rows=3 next=4 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(db, std::string("EXPLAIN ANALYZE ") + kJoinSql),
            expected);
}

TEST(ExplainGoldenTest, AnalyzeCountsInvariantUnderVectorSize) {
  // Per-operator stats count TUPLES, not chunks: a full drain of n rows
  // reports rows=n next=n+1 at any born.vector_size, so the ANALYZE output
  // at chunk size 1 and 3 is byte-identical to the default-size golden
  // above (AnalyzeSelectWithHashJoin).
  for (int vector_size : {1, 3}) {
    Database db;
    LoadJoinFixture(&db);
    BORNSQL_ASSERT_OK(db.Execute("SET born.vector_size = " +
                                 std::to_string(vector_size))
                          .status());
    std::vector<std::string> expected = {
        "Project(2 columns)  (actual rows=2 next=3 time=Xms)",
        "  HashJoin(inner, 1 keys)  "
        "(actual rows=2 next=3 time=Xms peak=3 mem=X)",
        "    SeqScan(t1, 4 rows)  (actual rows=4 next=5 time=Xms)",
        "    SeqScan(t2, 3 rows)  (actual rows=3 next=4 time=Xms)",
    };
    EXPECT_EQ(MaskedPlanLines(db, std::string("EXPLAIN ANALYZE ") + kJoinSql),
              expected)
        << "born.vector_size=" << vector_size;
  }
}

TEST(ExplainGoldenTest, AnalyzeSelectWithSortMergeJoin) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kSortMerge;
  config.use_index_joins = false;
  Database db{config};
  LoadJoinFixture(&db);
  // Sort-merge materializes both sides: peak = 4 + 3 rows.
  std::vector<std::string> expected = {
      "Project(2 columns)  (actual rows=2 next=3 time=Xms)",
      "  SortMergeJoin(inner, 1 keys)  "
      "(actual rows=2 next=3 time=Xms peak=7 mem=X)",
      "    SeqScan(t1, 4 rows)  (actual rows=4 next=5 time=Xms)",
      "    SeqScan(t2, 3 rows)  (actual rows=3 next=4 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(db, std::string("EXPLAIN ANALYZE ") + kJoinSql),
            expected);
}

TEST(ExplainGoldenTest, AnalyzeSelectWithNestedLoopJoin) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kNestedLoop;
  config.use_index_joins = false;
  Database db{config};
  LoadJoinFixture(&db);
  // The nested-loop strategy plans the equi-join as a cross product (4*3 =
  // 12 rows, right side materialized: peak=3) under the join predicate.
  std::vector<std::string> expected = {
      "Project(2 columns)  (actual rows=2 next=3 time=Xms)",
      "  Filter  (actual rows=2 next=3 time=Xms)",
      "    NestedLoopJoin(cross)  "
      "(actual rows=12 next=13 time=Xms peak=3 mem=X)",
      "      SeqScan(t1, 4 rows)  (actual rows=4 next=5 time=Xms)",
      "      SeqScan(t2, 3 rows)  (actual rows=3 next=4 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(db, std::string("EXPLAIN ANALYZE ") + kJoinSql),
            expected);
}

TEST(ExplainGoldenTest, AnalyzeInsertSelect) {
  Database db;
  LoadJoinFixture(&db);
  std::vector<std::string> expected = {
      "Insert(t2)  (actual rows=4 next=0 time=Xms)",
      "  Project(2 columns)  (actual rows=4 next=5 time=Xms)",
      "    SeqScan(t1, 4 rows)  (actual rows=4 next=5 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(
                db, "EXPLAIN ANALYZE INSERT INTO t2 SELECT a, a*10 FROM t1"),
            expected);
  // The insert really executed (ANALYZE runs the statement).
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM t2").rows[0][0].AsInt(), 7);
}

TEST(ExplainGoldenTest, AnalyzeUpdateReportsRowsExamined) {
  Database db;
  LoadJoinFixture(&db);
  std::vector<std::string> expected = {
      "Update(t1, 1 set clauses)  (actual rows=2 next=0 time=Xms)",
      "  Filter",
      "    SeqScan(t1, 4 rows)  (actual rows=4 next=4 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(
                db, "EXPLAIN ANALYZE UPDATE t1 SET b = 'q' WHERE a > 2"),
            expected);
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM t1 WHERE b = 'q'")
                .rows[0][0]
                .AsInt(),
            2);
}

TEST(ExplainGoldenTest, AnalyzeDelete) {
  Database db;
  LoadJoinFixture(&db);
  std::vector<std::string> expected = {
      "Delete(t2)  (actual rows=1 next=0 time=Xms)",
      "  Filter",
      "    SeqScan(t2, 3 rows)  (actual rows=3 next=3 time=Xms)",
  };
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN ANALYZE DELETE FROM t2 WHERE a = 9"),
            expected);
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM t2").rows[0][0].AsInt(), 2);
}

TEST(ExplainGoldenTest, PlainExplainCoversEveryStatementKind) {
  Database db;
  LoadJoinFixture(&db);
  // Plain EXPLAIN never executes: t1/t2 must stay untouched throughout.
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN INSERT INTO t2 VALUES (5, 50)"),
            (std::vector<std::string>{"Insert(t2)", "  Values(1 rows)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN INSERT INTO t2 SELECT a, a FROM t1"),
            (std::vector<std::string>{"Insert(t2)", "  Project(2 columns)",
                                      "    SeqScan(t1, 4 rows)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN UPDATE t1 SET b = 'u' WHERE a = 1"),
            (std::vector<std::string>{"Update(t1, 1 set clauses)", "  Filter",
                                      "    SeqScan(t1, 4 rows)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN DELETE FROM t1"),
            (std::vector<std::string>{"Delete(t1)",
                                      "  SeqScan(t1, 4 rows)"}));
  EXPECT_EQ(
      MaskedPlanLines(db, "EXPLAIN CREATE TABLE t3 AS SELECT a FROM t1"),
      (std::vector<std::string>{"CreateTableAs(t3)", "  Project(1 columns)",
                                "    SeqScan(t1, 4 rows)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN CREATE TABLE t4 (x INTEGER)"),
            (std::vector<std::string>{"CreateTable(t4, 1 columns)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN DROP TABLE t2"),
            (std::vector<std::string>{"DropTable(t2)"}));
  EXPECT_EQ(MaskedPlanLines(db, "EXPLAIN CREATE INDEX idx ON t2 (a)"),
            (std::vector<std::string>{"CreateIndex(idx ON t2)"}));
  // Nothing executed.
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM t1").rows[0][0].AsInt(), 4);
  EXPECT_EQ(MustQuery(db, "SELECT COUNT(*) FROM t2").rows[0][0].AsInt(), 3);
  EXPECT_FALSE(db.catalog().Exists("t3"));
  EXPECT_FALSE(db.catalog().Exists("t4"));
}

TEST(ExplainGoldenTest, ExplainOfExplainIsRejected) {
  Database db;
  auto result = db.Execute("EXPLAIN EXPLAIN SELECT 1");
  EXPECT_FALSE(result.ok());
}

TEST(ExecuteProfiledTest, ReturnsResultAndAnnotatedPlan) {
  Database db;
  LoadJoinFixture(&db);
  auto profiled = db.ExecuteProfiled(kJoinSql);
  BORNSQL_ASSERT_OK(profiled.status());
  EXPECT_EQ(profiled->result.rows.size(), 2u);
  EXPECT_EQ(profiled->plan.name, "Project(2 columns)");
  ASSERT_TRUE(profiled->plan.has_stats);
  EXPECT_EQ(profiled->plan.stats.rows_emitted, 2u);
  ASSERT_EQ(profiled->plan.children.size(), 1u);
  EXPECT_EQ(obs::OperatorTypeOf(profiled->plan.children[0].name), "HashJoin");
  // The JSON mirror carries the same numbers.
  std::string json = obs::PlanStatsToJson(profiled->plan);
  EXPECT_NE(json.find("\"operator\": \"Project(2 columns)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rows\": 2"), std::string::npos);
}

TEST(ExecuteProfiledTest, RejectsExplainStatements) {
  Database db;
  auto profiled = db.ExecuteProfiled("EXPLAIN SELECT 1");
  EXPECT_FALSE(profiled.ok());
}

TEST(MetricsRegistryTest, CountersAccumulateAndReset) {
  obs::MetricsRegistry metrics;
  EXPECT_EQ(metrics.counter("nope"), 0u);
  metrics.IncrementCounter("c");
  metrics.IncrementCounter("c", 41);
  EXPECT_EQ(metrics.counter("c"), 42u);
  metrics.Reset();
  EXPECT_EQ(metrics.counter("c"), 0u);
}

TEST(MetricsRegistryTest, HistogramBucketsAndPercentile) {
  obs::MetricsRegistry metrics;
  // 5us, 30us, 2ms, 20s (overflow) as seconds.
  metrics.RecordLatency("lat", 5e-6);
  metrics.RecordLatency("lat", 30e-6);
  metrics.RecordLatency("lat", 2e-3);
  metrics.RecordLatency("lat", 20.0);
  obs::LatencyHistogram hist = metrics.histogram("lat");
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.bucket(1), 1u);  // <= 5us
  EXPECT_EQ(hist.bucket(3), 1u);  // <= 50us
  EXPECT_EQ(hist.bucket(obs::LatencyHistogram::kNumBuckets - 1), 1u);
  // p50 over {5us, 30us, 2ms, 20s}: the 2nd sample lands in the 50us bucket.
  EXPECT_DOUBLE_EQ(hist.PercentileUs(0.5), 50.0);
  std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"le_us\": \"+Inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, OperatorAggregatesMerge) {
  obs::MetricsRegistry metrics;
  obs::OperatorStats stats;
  stats.open_calls = 1;
  stats.next_calls = 10;
  stats.rows_emitted = 9;
  stats.peak_entries = 5;
  metrics.RecordOperator("SeqScan", stats);
  stats.peak_entries = 3;
  metrics.RecordOperator("SeqScan", stats);
  obs::OperatorAggregate agg = metrics.operator_aggregate("SeqScan");
  EXPECT_EQ(agg.instances, 2u);
  EXPECT_EQ(agg.stats.rows_emitted, 18u);
  EXPECT_EQ(agg.stats.next_calls, 20u);
  EXPECT_EQ(agg.stats.peak_entries, 5u);  // max, not sum
  EXPECT_EQ(metrics.operator_aggregate("HashJoin").instances, 0u);
}

TEST(MetricsTest, DatabaseRecordsStatementCountsAndLatency) {
  obs::MetricsRegistry metrics;
  Database db;
  db.set_metrics(&metrics);
  LoadJoinFixture(&db);  // 4 statements
  MustQuery(db, "SELECT COUNT(*) FROM t1");
  EXPECT_FALSE(db.Execute("SELECT nonsense FROM nowhere").ok());
  EXPECT_EQ(metrics.counter(obs::kQueriesExecuted), 6u);
  EXPECT_EQ(metrics.counter(obs::kQueriesFailed), 1u);
  EXPECT_EQ(metrics.histogram(obs::kStatementLatencyUs).count(), 6u);
  // Plain (uninstrumented) execution folds no per-operator data.
  EXPECT_EQ(metrics.counter(obs::kRowsScanned), 0u);
}

TEST(MetricsTest, CollectExecStatsFoldsOperatorAggregates) {
  obs::MetricsRegistry metrics;
  EngineConfig config;
  config.collect_exec_stats = true;
  Database db{config};
  db.set_metrics(&metrics);
  LoadJoinFixture(&db);
  MustQuery(db, kJoinSql);
  // The join scanned both tables and probed with the left input's rows.
  EXPECT_EQ(metrics.counter(obs::kRowsScanned), 7u);
  EXPECT_EQ(metrics.counter(obs::kJoinProbes), 4u);
  EXPECT_EQ(metrics.operator_aggregate("SeqScan").instances, 2u);
  EXPECT_EQ(metrics.operator_aggregate("HashJoin").instances, 1u);
  EXPECT_EQ(metrics.operator_aggregate("HashJoin").stats.rows_emitted, 2u);
}

TEST(ScalarValueTest, DescribesNonScalarShapes) {
  Database db;
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (1),(2);"));
  QueryResult two_rows = MustQuery(db, "SELECT a FROM t");
  auto scalar = two_rows.ScalarValue();
  ASSERT_FALSE(scalar.ok());
  EXPECT_NE(scalar.status().ToString().find("2x1"), std::string::npos);

  QueryResult empty = MustQuery(db, "SELECT a FROM t WHERE a > 9");
  auto none = empty.ScalarValue();
  ASSERT_FALSE(none.ok());
  EXPECT_NE(none.status().ToString().find("0x0"), std::string::npos);

  QueryResult ok = MustQuery(db, "SELECT COUNT(*) FROM t");
  auto value = ok.ScalarValue();
  BORNSQL_ASSERT_OK(value.status());
  EXPECT_EQ(value->AsInt(), 2);
}

TEST(StatsTest, OperatorStatsMergeAndTimer) {
  obs::OperatorStats a;
  a.open_calls = 1;
  a.next_calls = 5;
  a.rows_emitted = 4;
  a.peak_entries = 2;
  obs::OperatorStats b;
  b.next_calls = 7;
  b.peak_entries = 9;
  a.MergeFrom(b);
  EXPECT_EQ(a.next_calls, 12u);
  EXPECT_EQ(a.peak_entries, 9u);
  obs::OperatorStats timed;
  { obs::StatsTimer timer(&timed); }
  EXPECT_GE(timed.wall_nanos, 0u);
  // The timer records the operator's lifetime interval for trace spans.
  EXPECT_GT(timed.first_ns, 0u);
  EXPECT_GE(timed.last_ns, timed.first_ns);
  a.Reset();
  EXPECT_EQ(a.next_calls, 0u);
}

TEST(MetricsRegistryTest, HistogramBoundariesAreDeterministic) {
  // Regression: values exactly on a bucket boundary must land in that
  // bucket (<= bound), and values above the last finite bound must land in
  // the overflow bucket — independent of floating-point representation.
  obs::MetricsRegistry metrics;
  metrics.RecordLatency("edge", 1e-6);     // exactly 1us -> bucket 0
  metrics.RecordLatency("edge", 5e-6);     // exactly 5us -> bucket 1
  metrics.RecordLatency("edge", 10e-6);    // exactly 10us -> bucket 2
  metrics.RecordLatency("edge", 50e-6);    // exactly 50us -> bucket 3
  metrics.RecordLatency("edge", 100e-6);   // exactly 100us -> bucket 4
  metrics.RecordLatency("edge", 1e-3);     // exactly 1ms
  metrics.RecordLatency("edge", 5.0);      // exactly 5s -> last finite bucket
  metrics.RecordLatency("edge", 5.000001);  // just above -> overflow
  obs::LatencyHistogram hist = metrics.histogram("edge");
  EXPECT_EQ(hist.count(), 8u);
  EXPECT_EQ(hist.bucket(0), 1u);
  EXPECT_EQ(hist.bucket(1), 1u);
  EXPECT_EQ(hist.bucket(2), 1u);
  EXPECT_EQ(hist.bucket(3), 1u);
  EXPECT_EQ(hist.bucket(4), 1u);
  EXPECT_EQ(hist.bucket(obs::LatencyHistogram::kNumBuckets - 2), 1u);
  EXPECT_EQ(hist.bucket(obs::LatencyHistogram::kNumBuckets - 1), 1u);
}

TEST(MetricsRegistryTest, ConcurrentHammer) {
  // Many threads hitting every registry entry point; the sums must come
  // out exact and the run must be clean under ASan/TSan.
  obs::MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      obs::OperatorStats stats;
      stats.open_calls = 1;
      stats.next_calls = 2;
      stats.rows_emitted = 1;
      for (int i = 0; i < kIters; ++i) {
        metrics.IncrementCounter("hammer");
        metrics.RecordLatency("hammer_lat", 1e-6 * (i % 100));
        metrics.RecordOperator("HammerOp", stats);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t expected = uint64_t{kThreads} * kIters;
  EXPECT_EQ(metrics.counter("hammer"), expected);
  EXPECT_EQ(metrics.histogram("hammer_lat").count(), expected);
  obs::OperatorAggregate agg = metrics.operator_aggregate("HammerOp");
  EXPECT_EQ(agg.instances, expected);
  EXPECT_EQ(agg.stats.rows_emitted, expected);
  EXPECT_EQ(agg.stats.next_calls, 2 * expected);
}


TEST(TraceRecorderTest, ConcurrentHammer) {
  // Several threads recording, snapshotting, clearing and resizing one
  // recorder; exercised under TSan by ci.sh leg 3. Counts are checked
  // only loosely (Clear races with Record by design) — the point is that
  // every entry point is safe to interleave.
  obs::TraceRecorder recorder(/*capacity=*/64);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kIters; ++i) {
        obs::StatementTrace trace;
        trace.statement = "SELECT " + std::to_string(t);
        trace.start_ns = recorder.NowNs();
        trace.spans.push_back({"execute", "phase", trace.start_ns, 1});
        recorder.Record(std::move(trace));
        if (i % 64 == 0) {
          auto snapshot = recorder.Snapshot();
          // Bound by the largest capacity ever set, not recorder.capacity():
          // thread 0 may shrink the ring between Snapshot() and the read.
          EXPECT_LE(snapshot.size(), 64u);
          for (const obs::StatementTrace& st : snapshot) {
            EXPECT_GT(st.id, 0u);
          }
        }
        if (t == 0 && i % 128 == 0) {
          recorder.set_capacity(i % 256 == 0 ? 32 : 64);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(recorder.size(), recorder.capacity());
  // Ids keep increasing monotonically within the surviving window.
  auto snapshot = recorder.Snapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].id, snapshot[i].id);
  }
}

TEST(StatementStatsRegistryTest, ConcurrentHammer) {
  // Distinct per-thread keys plus one shared key; totals must come out
  // exact and the run must be clean under TSan (ci.sh leg 3).
  obs::StatementStatsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      const std::string mine = "SELECT " + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        registry.Record(mine, 0.5, 1, /*error=*/false);
        registry.Record("SELECT shared", 0.25, 2, /*error=*/(i % 2) == 0);
        if (i % 100 == 0) (void)registry.Snapshot();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto snapshot = registry.Snapshot();
  const uint64_t expected = uint64_t{kThreads} * kIters;
  const obs::StatementStats& shared = snapshot.at("SELECT shared");
  EXPECT_EQ(shared.calls, expected);
  EXPECT_EQ(shared.rows, 2 * expected);
  EXPECT_EQ(shared.errors, expected / 2);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snapshot.at("SELECT " + std::to_string(t)).calls,
              uint64_t{kIters});
  }
}

TEST(StatementStatsTest, EvictsLeastRecentlyRecordedAtCapacity) {
  obs::StatementStatsRegistry registry;
  for (size_t i = 0; i < obs::StatementStatsRegistry::kMaxEntries; ++i) {
    EXPECT_FALSE(registry.Record("q" + std::to_string(i), 1.0, 1, false));
  }
  EXPECT_EQ(registry.size(), obs::StatementStatsRegistry::kMaxEntries);
  EXPECT_EQ(registry.evictions(), 0u);

  // Touch q0 so it is no longer the least recently recorded, then admit a
  // new key: q1 (the oldest untouched entry) must be the victim.
  registry.Record("q0", 1.0, 1, false);
  EXPECT_TRUE(registry.Record("fresh", 1.0, 1, false));
  EXPECT_EQ(registry.size(), obs::StatementStatsRegistry::kMaxEntries);
  EXPECT_EQ(registry.evictions(), 1u);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.count("q0"), 1u);
  EXPECT_EQ(snapshot.count("q1"), 0u);
  EXPECT_EQ(snapshot.count("fresh"), 1u);
  // The evicted key's stats restart from zero if it returns.
  registry.Record("q1", 1.0, 7, false);
  EXPECT_EQ(registry.Snapshot().at("q1").calls, 1u);
  EXPECT_EQ(registry.evictions(), 2u);
}

}  // namespace
}  // namespace bornsql
