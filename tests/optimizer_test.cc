// Tests for the rule-based logical-plan optimizer: per-rule trigger and
// non-trigger cases, the born_stat_optimizer counters, SET born.opt.<rule>
// flags, the use_index_joins diagnostic note, a rule-off equivalence
// battery, and logical-verifier unit tests over hand-built IR.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/optimizer.h"
#include "engine/system_views.h"
#include "lint/logical_verifier.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "tests/test_util.h"

namespace bornsql {
namespace {

using engine::Database;
using engine::EngineConfig;
using engine::JoinStrategy;
using engine::Optimizer;
using engine::OptimizerRuleFlag;
using engine::OptimizerRuleNames;
using engine::QueryResult;
using engine::SystemViews;
using bornsql::testing::MustQuery;
using bornsql::testing::RowStrings;

void LoadFixture(Database* db) {
  BORNSQL_ASSERT_OK(db->ExecuteScript(
      "CREATE TABLE t (a INTEGER, b INTEGER, tag TEXT);"
      "CREATE TABLE u (a INTEGER, c INTEGER, note TEXT);"
      "CREATE TABLE v (c INTEGER, d INTEGER, extra TEXT);"
      "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'z'),"
      "                     (4, 40, 'x');"
      "INSERT INTO u VALUES (1, 100, 'p'), (2, 200, 'q'), (3, 300, 'r'),"
      "                     (5, 500, 's');"
      "INSERT INTO v VALUES (100, 7, 'm'), (200, 8, 'n'), (300, 9, 'o');"));
}

// The EXPLAIN LOGICAL rows after (and excluding) the "after rules" header.
std::vector<std::string> AfterLines(Database& db, const std::string& sql) {
  QueryResult result = MustQuery(db, "EXPLAIN LOGICAL " + sql);
  std::vector<std::string> out;
  bool after = false;
  for (const Row& row : result.rows) {
    const std::string line = row[0].AsText();
    if (line == "logical plan (after rules):") {
      after = true;
      continue;
    }
    if (after) out.push_back(line);
  }
  return out;
}

std::string Joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule catalog and flags.

TEST(OptimizerRulesTest, RuleNamesArePipelineOrdered) {
  const std::vector<std::string> expected = {
      "derived_table_pullup", "cte_inline",     "constant_folding",
      "predicate_pushdown",   "equi_join_extraction", "filter_reorder",
      "projection_pruning"};
  EXPECT_EQ(OptimizerRuleNames(), expected);
}

TEST(OptimizerRulesTest, EveryFlaggedRuleResolvesAndCteInlineDoesNot) {
  engine::OptimizerRules rules;
  for (const std::string& name : OptimizerRuleNames()) {
    bool* flag = OptimizerRuleFlag(&rules, name);
    if (name == "cte_inline") {
      // Driven by EngineConfig::materialize_ctes (the paper's CTE axis),
      // not a born.opt flag.
      EXPECT_EQ(flag, nullptr) << name;
    } else {
      ASSERT_NE(flag, nullptr) << name;
      EXPECT_TRUE(*flag) << name << " should default on";
    }
  }
  EXPECT_EQ(OptimizerRuleFlag(&rules, "no_such_rule"), nullptr);
}

// ---------------------------------------------------------------------------
// constant_folding.

TEST(ConstantFoldingTest, FoldsLiteralArithmeticInPredicates) {
  Database db;
  LoadFixture(&db);
  const std::string after =
      Joined(AfterLines(db, "SELECT a FROM t WHERE a = 1 + 1"));
  EXPECT_TRUE(Contains(after, "Filter(a = 2)")) << after;
  const auto stats = db.optimizer_stats().rule_stats("constant_folding");
  EXPECT_GE(stats.fired, 1u);
  EXPECT_GE(stats.rewrites, 1u);
}

TEST(ConstantFoldingTest, DoesNotFireWithoutConstantSubexpressions) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t WHERE a = b");
  const auto stats = db.optimizer_stats().rule_stats("constant_folding");
  EXPECT_GE(stats.invocations, 1u);
  EXPECT_EQ(stats.fired, 0u);
}

TEST(ConstantFoldingTest, PreservesRuntimeSemanticsOfNullArithmetic) {
  // 1/0 evaluates to NULL in this engine; folding it at plan time must
  // yield exactly what runtime evaluation yields (no rows match NULL).
  const char* sql = "SELECT a FROM t WHERE a = 1 / 0";
  Database folded;
  LoadFixture(&folded);
  Database unfolded;
  unfolded.config().rules.constant_folding = false;
  LoadFixture(&unfolded);
  EXPECT_EQ(RowStrings(MustQuery(folded, sql)),
            RowStrings(MustQuery(unfolded, sql)));
  EXPECT_TRUE(MustQuery(folded, sql).rows.empty());
}

// ---------------------------------------------------------------------------
// predicate_pushdown.

TEST(PredicatePushdownTest, SinksSingleTableConjunctBelowJoin) {
  Database db;
  LoadFixture(&db);
  const std::vector<std::string> lines =
      AfterLines(db, "SELECT t.b, u.c FROM t, u WHERE t.a = u.a AND t.b > 15");
  // The t.b conjunct must sit directly above Scan(t), below the join.
  bool found = false;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    if (Contains(lines[i], "Filter(t.b > 15)") &&
        Contains(lines[i + 1], "Scan(t)")) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << Joined(lines);
  EXPECT_GE(db.optimizer_stats().rule_stats("predicate_pushdown").fired, 1u);
}

TEST(PredicatePushdownTest, DoesNotFireOnSingleTableQueries) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t WHERE b > 15");
  EXPECT_EQ(db.optimizer_stats().rule_stats("predicate_pushdown").fired, 0u);
}

// ---------------------------------------------------------------------------
// equi_join_extraction.

TEST(EquiJoinExtractionTest, TurnsCrossJoinPredicateIntoJoinKeys) {
  Database db;
  LoadFixture(&db);
  const std::string after =
      Joined(AfterLines(db, "SELECT t.b, u.c FROM t, u WHERE t.a = u.a"));
  EXPECT_TRUE(Contains(after, "Join(inner, keys: t.a = u.a)")) << after;
  EXPECT_FALSE(Contains(after, "Join(cross)")) << after;
  EXPECT_GE(db.optimizer_stats().rule_stats("equi_join_extraction").fired,
            1u);
}

TEST(EquiJoinExtractionTest, InactiveUnderNestedLoopStrategy) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kNestedLoop;
  Database db(config);
  LoadFixture(&db);
  const std::string after =
      Joined(AfterLines(db, "SELECT t.b, u.c FROM t, u WHERE t.a = u.a"));
  EXPECT_TRUE(Contains(after, "Join(cross)")) << after;
  // The rule is gated off entirely: no invocation is even recorded.
  EXPECT_EQ(
      db.optimizer_stats().rule_stats("equi_join_extraction").invocations,
      0u);
}

// ---------------------------------------------------------------------------
// filter_reorder.

TEST(FilterReorderTest, OrdersConjunctsBySelectivityClass) {
  Database db;
  LoadFixture(&db);
  const std::string after = Joined(
      AfterLines(db, "SELECT a FROM t WHERE tag LIKE '%x%' AND b = 10"));
  // Equality (most selective class) must come before LIKE.
  EXPECT_TRUE(Contains(after, "Filter(b = 10 AND tag LIKE '%x%')")) << after;
  EXPECT_GE(db.optimizer_stats().rule_stats("filter_reorder").fired, 1u);
}

TEST(FilterReorderTest, DoesNotFireWhenAlreadyOrdered) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT a FROM t WHERE b = 10 AND tag LIKE '%x%'");
  EXPECT_EQ(db.optimizer_stats().rule_stats("filter_reorder").fired, 0u);
}

TEST(FilterReorderTest, MergesStackedFiltersInnermostFirst) {
  // Built directly at the IR level: stacked Filters do not survive the
  // builder's own shaping, but a rule must still handle them (they arise
  // from rule composition).
  Schema scan_schema;
  scan_schema.Add(Column{"t", "a", ValueType::kInt});
  scan_schema.Add(Column{"t", "b", ValueType::kInt});

  plan::LogicalPtr scan = plan::MakeLogical(plan::LogicalKind::kScan);
  scan->schema = scan_schema;

  plan::LogicalPtr inner = plan::MakeLogical(plan::LogicalKind::kFilter);
  inner->conjuncts.push_back(sql::MakeBinary(sql::BinaryOp::kGt,
                                             sql::MakeColumnRef("t", "a"),
                                             sql::MakeLiteral(Value::Int(0))));
  inner->schema = scan_schema;
  inner->children.push_back(std::move(scan));

  plan::LogicalPtr outer = plan::MakeLogical(plan::LogicalKind::kFilter);
  outer->conjuncts.push_back(sql::MakeBinary(sql::BinaryOp::kEq,
                                             sql::MakeColumnRef("t", "b"),
                                             sql::MakeLiteral(Value::Int(1))));
  outer->schema = scan_schema;
  outer->children.push_back(std::move(inner));

  plan::LogicalPtr root = plan::MakeLogical(plan::LogicalKind::kProject);
  plan::ProjectItem item;
  item.ordinal = 0;
  root->items.push_back(std::move(item));
  root->schema.Add(scan_schema.column(0));
  root->children.push_back(std::move(outer));

  EngineConfig config;
  Optimizer opt(&config, nullptr, nullptr, nullptr);
  BORNSQL_ASSERT_OK(opt.Run(root.get()));

  const plan::LogicalNode* filter = root->children[0].get();
  ASSERT_EQ(filter->kind, plan::LogicalKind::kFilter);
  ASSERT_EQ(filter->conjuncts.size(), 2u);
  EXPECT_EQ(filter->children[0]->kind, plan::LogicalKind::kScan);
  // Sorted by selectivity class: the equality first, then the range.
  EXPECT_EQ(plan::ExprToText(*filter->conjuncts[0]), "t.b = 1");
  EXPECT_EQ(plan::ExprToText(*filter->conjuncts[1]), "t.a > 0");
}

// ---------------------------------------------------------------------------
// projection_pruning.

TEST(ProjectionPruningTest, NarrowsAggregateInputOverJoin) {
  Database db;
  LoadFixture(&db);
  const std::string after = Joined(AfterLines(
      db,
      "SELECT u.c, SUM(t.b) FROM t, u WHERE t.a = u.a GROUP BY u.c"));
  // The aggregate reads 2 of the join's 6 columns; a pass-through Project
  // must sit between the Aggregate and the Join.
  EXPECT_TRUE(Contains(after, "Aggregate")) << after;
  EXPECT_GE(db.optimizer_stats().rule_stats("projection_pruning").fired, 1u);
  std::vector<std::string> lines = AfterLines(
      db, "SELECT u.c, SUM(t.b) FROM t, u WHERE t.a = u.a GROUP BY u.c");
  bool project_below_aggregate = false;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    if (Contains(lines[i], "Aggregate") &&
        Contains(lines[i + 1], "Project(")) {
      project_below_aggregate = true;
    }
  }
  EXPECT_TRUE(project_below_aggregate) << Joined(lines);
}

TEST(ProjectionPruningTest, DoesNotFireWhenAllColumnsAreUsed) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SELECT * FROM t, u WHERE t.a = u.a");
  EXPECT_EQ(db.optimizer_stats().rule_stats("projection_pruning").fired, 0u);
}

TEST(ProjectionPruningTest, PrunedAggregateMatchesUnprunedResults) {
  const std::string sql =
      "SELECT u.c, SUM(t.b * u.c) FROM t, u, v "
      "WHERE t.a = u.a AND u.c = v.c GROUP BY u.c ORDER BY u.c";
  Database pruned;
  LoadFixture(&pruned);
  Database unpruned;
  unpruned.config().rules.projection_pruning = false;
  LoadFixture(&unpruned);
  EXPECT_EQ(RowStrings(MustQuery(pruned, sql)),
            RowStrings(MustQuery(unpruned, sql)));
  EXPECT_GE(pruned.optimizer_stats().rule_stats("projection_pruning").fired,
            1u);
  EXPECT_EQ(
      unpruned.optimizer_stats().rule_stats("projection_pruning").invocations,
      0u);
}

// ---------------------------------------------------------------------------
// cte_inline.

TEST(CteInlineTest, InlinesBodiesWhenMaterializationIsOff) {
  EngineConfig config;
  config.materialize_ctes = false;
  Database db(config);
  LoadFixture(&db);
  const std::string after = Joined(AfterLines(
      db,
      "WITH big AS (SELECT a, b FROM t WHERE b > 5) "
      "SELECT x.a, y.b FROM big x, big y WHERE x.a = y.a"));
  EXPECT_FALSE(Contains(after, "with big:")) << after;
  EXPECT_FALSE(Contains(after, "CteScan")) << after;
  EXPECT_GE(db.optimizer_stats().rule_stats("cte_inline").fired, 1u);
}

TEST(CteInlineTest, InactiveUnderMaterialization) {
  Database db;  // materialize_ctes defaults true
  LoadFixture(&db);
  const std::string after = Joined(AfterLines(
      db,
      "WITH big AS (SELECT a, b FROM t WHERE b > 5) "
      "SELECT x.a, y.b FROM big x, big y WHERE x.a = y.a"));
  EXPECT_TRUE(Contains(after, "CteRef(big")) << after;
  EXPECT_EQ(db.optimizer_stats().rule_stats("cte_inline").invocations, 0u);
}

// ---------------------------------------------------------------------------
// born_stat_optimizer.

TEST(OptimizerStatsViewTest, SchemaGolden) {
  const Schema* schema = SystemViews::ViewSchema("born_stat_optimizer");
  ASSERT_NE(schema, nullptr);
  std::vector<std::string> lines;
  for (const Column& col : schema->columns()) {
    lines.push_back(col.name + " " + ValueTypeName(col.type));
  }
  const std::vector<std::string> expected = {
      "rule TEXT",      "invocations INTEGER", "fired INTEGER",
      "rewrites INTEGER", "validated INTEGER", "violations INTEGER"};
  EXPECT_EQ(lines, expected);
}

TEST(OptimizerStatsViewTest, ListsEveryRuleInPipelineOrderWithZeros) {
  Database db;
  QueryResult result = MustQuery(db, "SELECT rule FROM born_stat_optimizer");
  std::vector<std::string> rules;
  for (const Row& row : result.rows) rules.push_back(row[0].AsText());
  EXPECT_EQ(rules, OptimizerRuleNames());
  QueryResult counts = MustQuery(
      db, "SELECT SUM(invocations + fired + rewrites) FROM "
          "born_stat_optimizer");
  // The view scan itself plans (bumping counters for the *next* read), but
  // at the moment the first query's snapshot was taken everything was 0...
  // except that planning the first SELECT already invoked the pipeline. So
  // just assert the view is queryable and numeric here.
  ASSERT_EQ(counts.rows.size(), 1u);
}

TEST(OptimizerStatsViewTest, CountersAdvanceWithQueries) {
  Database db;
  LoadFixture(&db);
  db.optimizer_stats().Reset();
  MustQuery(db, "SELECT t.b, u.c FROM t, u WHERE t.a = u.a");
  QueryResult result = MustQuery(
      db,
      "SELECT rule, fired FROM born_stat_optimizer WHERE fired > 0");
  std::vector<std::string> fired;
  for (const Row& row : result.rows) fired.push_back(row[0].AsText());
  EXPECT_TRUE(std::find(fired.begin(), fired.end(), "equi_join_extraction") !=
              fired.end())
      << Joined(fired);
}

// ---------------------------------------------------------------------------
// SET born.opt.<rule>.

TEST(OptimizerFlagsTest, SetDisablesAndReenablesARule) {
  Database db;
  LoadFixture(&db);
  MustQuery(db, "SET born.opt.constant_folding = 0");
  EXPECT_FALSE(db.config().rules.constant_folding);
  std::string after =
      Joined(AfterLines(db, "SELECT a FROM t WHERE a = 1 + 1"));
  EXPECT_TRUE(Contains(after, "1 + 1")) << after;
  MustQuery(db, "SET born.opt.constant_folding = 1");
  EXPECT_TRUE(db.config().rules.constant_folding);
  after = Joined(AfterLines(db, "SELECT a FROM t WHERE a = 1 + 1"));
  EXPECT_TRUE(Contains(after, "Filter(a = 2)")) << after;
}

TEST(OptimizerFlagsTest, UnknownRuleNameIsAnError) {
  Database db;
  auto result = db.Execute("SET born.opt.no_such_rule = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(Contains(result.status().ToString(),
                       "unknown optimizer rule 'no_such_rule'"))
      << result.status().ToString();
}

TEST(OptimizerFlagsTest, UnknownRuleNameListsTheValidRules) {
  Database db;
  auto result = db.Execute("SET born.opt.predicate_pushdwon = 1");  // typo
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_TRUE(Contains(
      message,
      "valid rules: derived_table_pullup, constant_folding, "
      "predicate_pushdown, equi_join_extraction, filter_reorder, "
      "projection_pruning"))
      << message;
}

TEST(OptimizerFlagsTest, CteInlineHasNoFlagAndSaysWhy) {
  Database db;
  auto result = db.Execute("SET born.opt.cte_inline = 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(Contains(result.status().ToString(), "materialize_ctes"))
      << result.status().ToString();
}

// ---------------------------------------------------------------------------
// use_index_joins diagnostic note (the silently-ignored-flag fix).

TEST(IndexJoinNoteTest, SortMergeStrategySurfacesTheNote) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kSortMerge;
  config.use_index_joins = true;
  Database db(config);
  LoadFixture(&db);
  QueryResult result = MustQuery(
      db, "EXPLAIN SELECT t.b, u.c FROM t, u WHERE t.a = u.a");
  ASSERT_FALSE(result.rows.empty());
  const std::string last = result.rows.back()[0].AsText();
  EXPECT_TRUE(Contains(last, "note: use_index_joins is ignored")) << last;
  EXPECT_TRUE(Contains(last, "sort-merge")) << last;
}

TEST(IndexJoinNoteTest, NestedLoopStrategySurfacesTheNote) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kNestedLoop;
  config.use_index_joins = true;
  Database db(config);
  LoadFixture(&db);
  QueryResult result = MustQuery(
      db, "EXPLAIN LOGICAL SELECT t.b, u.c FROM t, u WHERE t.a = u.a");
  ASSERT_FALSE(result.rows.empty());
  const std::string last = result.rows.back()[0].AsText();
  EXPECT_TRUE(Contains(last, "note: use_index_joins is ignored")) << last;
  EXPECT_TRUE(Contains(last, "nested-loop")) << last;
}

TEST(IndexJoinNoteTest, HashStrategyHasNoNote) {
  Database db;  // hash strategy, use_index_joins on: the flag is honored
  LoadFixture(&db);
  for (const char* sql :
       {"EXPLAIN SELECT t.b, u.c FROM t, u WHERE t.a = u.a",
        "EXPLAIN LOGICAL SELECT t.b, u.c FROM t, u WHERE t.a = u.a"}) {
    QueryResult result = MustQuery(db, sql);
    for (const Row& row : result.rows) {
      EXPECT_FALSE(Contains(row[0].AsText(), "note:")) << row[0].AsText();
    }
  }
}

TEST(IndexJoinNoteTest, DisabledFlagHasNoNote) {
  EngineConfig config;
  config.join_strategy = JoinStrategy::kSortMerge;
  config.use_index_joins = false;
  Database db(config);
  LoadFixture(&db);
  QueryResult result = MustQuery(
      db, "EXPLAIN SELECT t.b, u.c FROM t, u WHERE t.a = u.a");
  for (const Row& row : result.rows) {
    EXPECT_FALSE(Contains(row[0].AsText(), "note:")) << row[0].AsText();
  }
}

// ---------------------------------------------------------------------------
// Rule-off equivalence battery: disabling any single rule must not change
// results, only plans.

const char* const kBatteryQueries[] = {
    "SELECT t.b, u.c FROM t, u WHERE t.a = u.a AND t.b > 5 ORDER BY t.b",
    "SELECT u.c, SUM(t.b * u.c) FROM t, u, v "
    "WHERE t.a = u.a AND u.c = v.c AND v.d > 6 GROUP BY u.c ORDER BY u.c",
    "WITH big AS (SELECT a, b FROM t WHERE b > 5) "
    "SELECT x.a, y.b FROM big x, big y WHERE x.a = y.a ORDER BY x.a",
    "SELECT t.a, u.note FROM t LEFT JOIN u ON t.a = u.a ORDER BY t.a",
    "SELECT a, b FROM t WHERE tag LIKE '%x%' AND b >= 10 AND a = 1 + 0",
    "SELECT s.x FROM (SELECT a, a * 2 AS x, b FROM t) s, u "
    "WHERE s.a = u.a ORDER BY s.x",
};

TEST(RuleEquivalenceTest, EachRuleOffMatchesAllRulesOn) {
  Database reference;
  LoadFixture(&reference);
  std::vector<std::vector<std::string>> expected;
  for (const char* sql : kBatteryQueries) {
    expected.push_back(RowStrings(MustQuery(reference, sql)));
  }
  for (const std::string& rule : OptimizerRuleNames()) {
    engine::OptimizerRules probe;
    if (OptimizerRuleFlag(&probe, rule) == nullptr) continue;  // cte_inline
    Database db;
    *OptimizerRuleFlag(&db.config().rules, rule) = false;
    LoadFixture(&db);
    for (size_t i = 0; i < std::size(kBatteryQueries); ++i) {
      EXPECT_EQ(RowStrings(MustQuery(db, kBatteryQueries[i])), expected[i])
          << "rule off: " << rule << "\nsql: " << kBatteryQueries[i];
    }
  }
}

TEST(RuleEquivalenceTest, AllRulesOffMatchesAllRulesOn) {
  Database reference;
  LoadFixture(&reference);
  Database db;
  for (const std::string& rule : OptimizerRuleNames()) {
    if (bool* flag = OptimizerRuleFlag(&db.config().rules, rule)) {
      *flag = false;
    }
  }
  LoadFixture(&db);
  for (const char* sql : kBatteryQueries) {
    EXPECT_EQ(RowStrings(MustQuery(db, sql)),
              RowStrings(MustQuery(reference, sql)))
        << sql;
  }
}

// ---------------------------------------------------------------------------
// Logical verifier unit tests over hand-built IR.

plan::LogicalPtr MakeScanT() {
  plan::LogicalPtr scan = plan::MakeLogical(plan::LogicalKind::kScan);
  scan->schema.Add(Column{"t", "a", ValueType::kInt});
  scan->schema.Add(Column{"t", "b", ValueType::kInt});
  return scan;
}

TEST(LogicalVerifierTest, CleanPlanHasNoDiagnostics) {
  plan::LogicalPtr root = plan::MakeLogical(plan::LogicalKind::kProject);
  plan::ProjectItem item;
  item.ordinal = 1;
  root->items.push_back(std::move(item));
  plan::LogicalPtr scan = MakeScanT();
  root->schema.Add(scan->schema.column(1));
  root->children.push_back(std::move(scan));
  size_t checks = 0;
  EXPECT_TRUE(lint::VerifyLogicalPlan(*root, &checks).empty());
  EXPECT_GT(checks, 0u);
  BORNSQL_EXPECT_OK(lint::VerifyLogicalPlanStatus(*root));
}

TEST(LogicalVerifierTest, OutOfRangePassThroughOrdinalIsBSV009) {
  plan::LogicalPtr root = plan::MakeLogical(plan::LogicalKind::kProject);
  plan::ProjectItem item;
  item.ordinal = 7;  // child has 2 columns
  root->items.push_back(std::move(item));
  root->schema.Add(Column{"t", "a", ValueType::kInt});
  root->children.push_back(MakeScanT());
  const auto diags = lint::VerifyLogicalPlan(*root);
  ASSERT_FALSE(diags.empty());
  bool found = false;
  for (const auto& d : diags) found |= d.code == "BSV009";
  EXPECT_TRUE(found);
  EXPECT_FALSE(lint::VerifyLogicalPlanStatus(*root).ok());
}

TEST(LogicalVerifierTest, UnknownColumnReferenceIsBSV007) {
  plan::LogicalPtr filter = plan::MakeLogical(plan::LogicalKind::kFilter);
  filter->conjuncts.push_back(
      sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("t", "nope"),
                      sql::MakeLiteral(Value::Int(1))));
  plan::LogicalPtr scan = MakeScanT();
  filter->schema = scan->schema;
  filter->children.push_back(std::move(scan));
  const auto diags = lint::VerifyLogicalPlan(*filter);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].code, "BSV007");
}

TEST(LogicalVerifierTest, SchemaWidthMismatchIsBSV008) {
  plan::LogicalPtr filter = plan::MakeLogical(plan::LogicalKind::kFilter);
  filter->conjuncts.push_back(
      sql::MakeBinary(sql::BinaryOp::kGt, sql::MakeColumnRef("t", "a"),
                      sql::MakeLiteral(Value::Int(0))));
  plan::LogicalPtr scan = MakeScanT();
  filter->schema.Add(scan->schema.column(0));  // width 1, child width 2
  filter->children.push_back(std::move(scan));
  const auto diags = lint::VerifyLogicalPlan(*filter);
  bool found = false;
  for (const auto& d : diags) found |= d.code == "BSV008";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bornsql
