// Shared helpers for BornSQL tests.
#ifndef BORNSQL_TESTS_TEST_UTIL_H_
#define BORNSQL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace bornsql::testing {

// Fails the current test if `status_expr` is not OK.
#define BORNSQL_EXPECT_OK(status_expr)                        \
  do {                                                        \
    auto _st = (status_expr);                                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define BORNSQL_ASSERT_OK(status_expr)                        \
  do {                                                        \
    auto _st = (status_expr);                                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

// Runs `sql`, asserting success, and returns the result.
inline engine::QueryResult MustQuery(engine::Database& db,
                                     std::string_view sql) {
  auto result = db.Execute(sql);
  EXPECT_TRUE(result.ok()) << "query failed: " << result.status().ToString()
                           << "\nsql: " << sql;
  if (!result.ok()) return engine::QueryResult{};
  return std::move(result).value();
}

// Renders a result as "a|b|c\n..." rows sorted lexicographically, for
// order-insensitive comparisons.
inline std::vector<std::string> RowStrings(const engine::QueryResult& result,
                                           bool sorted = true) {
  std::vector<std::string> out;
  for (const Row& row : result.rows) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) line += "|";
      line += row[i].ToString();
    }
    out.push_back(std::move(line));
  }
  if (sorted) std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bornsql::testing

#endif  // BORNSQL_TESTS_TEST_UTIL_H_
