// Tests for the dataset synthesizers: schema, statistics the experiments
// rely on, and SQL loadability.
#include <gtest/gtest.h>

#include <set>

#include "data/adult.h"
#include "data/newsgroups.h"
#include "data/rlcp.h"
#include "data/scopus.h"
#include "tests/test_util.h"

namespace bornsql::data {
namespace {

using ::bornsql::testing::MustQuery;

TEST(ScopusTest, ClassDistributionMatchesTableOne) {
  ScopusOptions options;
  options.num_publications = 8000;
  ScopusSynthesizer synth(options);
  auto dist = synth.ClassDistribution();
  ASSERT_EQ(dist.size(), 3u);
  double n = static_cast<double>(options.num_publications);
  // Paper's Table 1: AI 43.4%, Decision 38.5%, Stats 18.1%.
  EXPECT_NEAR(dist[17] / n, 0.434, 0.03);
  EXPECT_NEAR(dist[18] / n, 0.385, 0.03);
  EXPECT_NEAR(dist[26] / n, 0.181, 0.03);
}

TEST(ScopusTest, IdsAreSequentialFromOne) {
  ScopusOptions options;
  options.num_publications = 100;
  ScopusSynthesizer synth(options);
  for (size_t i = 0; i < synth.publications().size(); ++i) {
    EXPECT_EQ(synth.publications()[i].id, static_cast<int64_t>(i) + 1);
  }
}

TEST(ScopusTest, ChronologicalDriftGrowsItems) {
  ScopusOptions options;
  options.num_publications = 4000;
  ScopusSynthesizer synth(options);
  const auto& pubs = synth.publications();
  auto avg_terms = [&](size_t begin, size_t end) {
    double total = 0;
    for (size_t i = begin; i < end; ++i) total += pubs[i].terms.size();
    return total / static_cast<double>(end - begin);
  };
  // Later publications have longer abstracts (drives Fig. 5b).
  EXPECT_GT(avg_terms(3000, 4000), avg_terms(0, 1000) * 1.2);
}

TEST(ScopusTest, DeterministicForSameSeed) {
  ScopusOptions options;
  options.num_publications = 200;
  ScopusSynthesizer a(options), b(options);
  ASSERT_EQ(a.publications().size(), b.publications().size());
  for (size_t i = 0; i < a.publications().size(); ++i) {
    EXPECT_EQ(a.publications()[i].pubname, b.publications()[i].pubname);
    EXPECT_EQ(a.publications()[i].asjc, b.publications()[i].asjc);
  }
}

TEST(ScopusTest, LoadsIntoEngine) {
  ScopusOptions options;
  options.num_publications = 300;
  ScopusSynthesizer synth(options);
  engine::Database db;
  BORNSQL_ASSERT_OK(synth.Load(&db));
  auto pubs = MustQuery(db, "SELECT COUNT(*) FROM publication");
  EXPECT_EQ(pubs.rows[0][0].AsInt(), 300);
  auto authors = MustQuery(db, "SELECT COUNT(*) FROM pub_author");
  EXPECT_GT(authors.rows[0][0].AsInt(), 300);
  // The q_x parts produce the prefixed features of Table 2.
  auto sample = MustQuery(
      db, "SELECT j FROM (" + ScopusSynthesizer::XParts()[0] +
              ") AS x WHERE n = 1");
  ASSERT_EQ(sample.rows.size(), 1u);
  EXPECT_EQ(sample.rows[0][0].AsText().rfind("pubname:", 0), 0u);
}

TEST(AdultTest, PositiveRateNearPaper) {
  AdultOptions options;
  options.train_size = 8000;
  options.test_size = 2000;
  AdultSynthesizer synth(options);
  double pos = 0;
  for (int y : synth.train_labels()) pos += y;
  EXPECT_NEAR(pos / synth.train_labels().size(), 0.24, 0.05);
}

TEST(AdultTest, UnderRepresentedCountriesAreAllNegative) {
  AdultOptions options;
  options.train_size = 8000;
  options.test_size = 1000;
  AdultSynthesizer synth(options);
  size_t country_col = synth.column_names().size() - 1;
  size_t holand = 0, outlying = 0;
  for (size_t i = 0; i < synth.train_rows().size(); ++i) {
    const std::string& c = synth.train_rows()[i][country_col];
    if (c == "Holand-Netherlands") {
      ++holand;
      EXPECT_EQ(synth.train_labels()[i], 0);
    } else if (c == "Outlying-US(Guam-USVI-etc)") {
      ++outlying;
      EXPECT_EQ(synth.train_labels()[i], 0);
    }
  }
  EXPECT_EQ(holand, 1u);
  EXPECT_EQ(outlying, 14u);
}

TEST(AdultTest, AboutHundredOneHotFeatures) {
  AdultOptions options;
  options.train_size = 6000;
  options.test_size = 100;
  AdultSynthesizer synth(options);
  std::set<std::string> features;
  for (const auto& row : synth.train_rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      features.insert(synth.column_names()[c] + "=" + row[c]);
    }
  }
  EXPECT_GE(features.size(), 80u);
  EXPECT_LE(features.size(), 110u);
}

TEST(AdultTest, LoadsIntoEngine) {
  AdultOptions options;
  options.train_size = 200;
  options.test_size = 100;
  AdultSynthesizer synth(options);
  engine::Database db;
  BORNSQL_ASSERT_OK(synth.Load(&db));
  auto r = MustQuery(db, "SELECT COUNT(*) FROM adult_train WHERE income = 1");
  EXPECT_GT(r.rows[0][0].AsInt(), 0);
  EXPECT_EQ(synth.XParts("adult_train").size(), 8u);
}

TEST(RlcpTest, ExtremeImbalancePreserved) {
  RlcpOptions options;
  options.train_size = 60000;
  options.test_size = 1000;
  RlcpSynthesizer synth(options);
  double pos = 0;
  for (int y : synth.train_labels()) pos += y;
  double rate = pos / synth.train_labels().size();
  EXPECT_GT(rate, 0.001);
  EXPECT_LT(rate, 0.008);
}

TEST(RlcpTest, MatchesAgreeOnMostComparisons) {
  RlcpOptions options;
  options.train_size = 30000;
  options.test_size = 100;
  RlcpSynthesizer synth(options);
  double match_agree = 0, match_n = 0, non_agree = 0, non_n = 0;
  for (size_t i = 0; i < synth.train_rows().size(); ++i) {
    for (const std::string& v : synth.train_rows()[i]) {
      double agree = v == "match" ? 1.0 : 0.0;
      if (synth.train_labels()[i]) {
        match_agree += agree;
        ++match_n;
      } else {
        non_agree += agree;
        ++non_n;
      }
    }
  }
  ASSERT_GT(match_n, 0);
  EXPECT_GT(match_agree / match_n, 0.7);
  EXPECT_LT(non_agree / non_n, 0.3);
}

TEST(RlcpTest, EighteenFeatures) {
  RlcpOptions options;
  options.train_size = 10;
  options.test_size = 10;
  RlcpSynthesizer synth(options);
  EXPECT_EQ(synth.column_names().size(), RlcpSynthesizer::kNumFeatures);
  EXPECT_EQ(synth.train_rows()[0].size(), RlcpSynthesizer::kNumFeatures);
}

TEST(NewsgroupsTest, PresetsHaveExpectedShape) {
  NewsgroupsSynthesizer ng(NewsgroupsOptions::TwentyNews());
  EXPECT_EQ(ng.num_classes(), 20u);
  std::set<int> labels;
  for (const Document& d : ng.train()) labels.insert(d.label);
  EXPECT_EQ(labels.size(), 20u);

  NewsgroupsOptions r8 = NewsgroupsOptions::R8();
  r8.train_size = 2000;
  r8.test_size = 200;
  NewsgroupsSynthesizer reuters(r8);
  // Skewed priors: the largest class dominates.
  std::vector<size_t> counts(8, 0);
  for (const Document& d : reuters.train()) ++counts[d.label];
  EXPECT_GT(counts[0], counts[7] * 5);
}

TEST(NewsgroupsTest, LoadsIntoEngine) {
  NewsgroupsOptions options;
  options.num_classes = 4;
  options.train_size = 100;
  options.test_size = 50;
  NewsgroupsSynthesizer synth(options);
  engine::Database db;
  BORNSQL_ASSERT_OK(synth.Load(&db));
  auto r = MustQuery(db, "SELECT COUNT(*) FROM doc_term_train");
  EXPECT_GT(r.rows[0][0].AsInt(), 100);
}

}  // namespace
}  // namespace bornsql::data
