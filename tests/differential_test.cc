// Randomized differential tests: the engine's answers are checked against
// expectations computed independently in plain C++ over the same data.
// These catch planner/executor interactions that targeted unit tests miss
// (predicate placement, join extraction, aggregation grouping, ordering).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"
#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;

struct Dataset {
  // r(k INTEGER, g INTEGER, w REAL) and s(k INTEGER, v INTEGER).
  std::vector<std::array<int64_t, 2>> r_keys;  // (k, g)
  std::vector<double> r_w;
  std::vector<std::array<int64_t, 2>> s_rows;  // (k, v)
};

Dataset MakeData(uint64_t seed, size_t n_r, size_t n_s, int key_range) {
  Rng rng(seed);
  Dataset data;
  for (size_t i = 0; i < n_r; ++i) {
    data.r_keys.push_back({static_cast<int64_t>(rng.Uniform(key_range)),
                           static_cast<int64_t>(rng.Uniform(5))});
    data.r_w.push_back(rng.NextDouble() * 10.0);
  }
  for (size_t i = 0; i < n_s; ++i) {
    data.s_rows.push_back({static_cast<int64_t>(rng.Uniform(key_range)),
                           static_cast<int64_t>(rng.Uniform(100))});
  }
  return data;
}

void Load(Database& db, const Dataset& data) {
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE r (k INTEGER, g INTEGER, w REAL);"
      "CREATE TABLE s (k INTEGER, v INTEGER)"));
  auto r = db.catalog().GetTable("r");
  auto s = db.catalog().GetTable("s");
  ASSERT_TRUE(r.ok() && s.ok());
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    (*r)->AppendUnchecked({Value::Int(data.r_keys[i][0]),
                           Value::Int(data.r_keys[i][1]),
                           Value::Double(data.r_w[i])});
  }
  for (const auto& row : data.s_rows) {
    (*s)->AppendUnchecked({Value::Int(row[0]), Value::Int(row[1])});
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, GroupedSumMatchesDirectComputation) {
  Dataset data = MakeData(GetParam(), 300, 0, 12);
  Database db;
  Load(db, data);

  std::map<std::pair<int64_t, int64_t>, double> expected;
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    expected[{data.r_keys[i][0], data.r_keys[i][1]}] += data.r_w[i];
  }
  auto result = MustQuery(
      db, "SELECT k, g, SUM(w) AS total FROM r GROUP BY k, g");
  ASSERT_EQ(result.rows.size(), expected.size());
  for (const Row& row : result.rows) {
    auto it = expected.find({row[0].AsInt(), row[1].AsInt()});
    ASSERT_NE(it, expected.end());
    EXPECT_NEAR(row[2].AsDouble(), it->second, 1e-9);
  }
}

TEST_P(DifferentialTest, FilteredAggregateMatches) {
  Dataset data = MakeData(GetParam() ^ 0x11, 400, 0, 20);
  Database db;
  Load(db, data);

  double expected = 0;
  size_t count = 0;
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    if (data.r_keys[i][0] % 3 == 1 && data.r_w[i] > 2.5) {
      expected += data.r_w[i];
      ++count;
    }
  }
  auto result = MustQuery(
      db, "SELECT COUNT(*), SUM(w) FROM r WHERE k % 3 = 1 AND w > 2.5");
  EXPECT_EQ(result.rows[0][0].AsInt(), static_cast<int64_t>(count));
  if (count > 0) {
    EXPECT_NEAR(result.rows[0][1].AsDouble(), expected, 1e-9);
  } else {
    EXPECT_TRUE(result.rows[0][1].is_null());
  }
}

TEST_P(DifferentialTest, EquiJoinMatchesNestedLoopComputation) {
  Dataset data = MakeData(GetParam() ^ 0x22, 120, 150, 15);
  Database db;
  Load(db, data);

  // Expectation by brute force.
  std::multiset<std::string> expected;
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    for (const auto& s_row : data.s_rows) {
      if (data.r_keys[i][0] == s_row[0] && s_row[1] >= 50) {
        expected.insert(StrFormat("%lld|%lld",
                                  static_cast<long long>(data.r_keys[i][0]),
                                  static_cast<long long>(s_row[1])));
      }
    }
  }
  auto result = MustQuery(
      db, "SELECT r.k, s.v FROM r, s WHERE r.k = s.k AND s.v >= 50");
  std::multiset<std::string> actual;
  for (const Row& row : result.rows) {
    actual.insert(row[0].ToString() + "|" + row[1].ToString());
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(DifferentialTest, JoinThenAggregateMatches) {
  Dataset data = MakeData(GetParam() ^ 0x33, 100, 100, 8);
  Database db;
  Load(db, data);

  std::map<int64_t, double> expected;  // g -> sum of w*v over join
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    for (const auto& s_row : data.s_rows) {
      if (data.r_keys[i][0] == s_row[0]) {
        expected[data.r_keys[i][1]] +=
            data.r_w[i] * static_cast<double>(s_row[1]);
      }
    }
  }
  auto result = MustQuery(
      db,
      "SELECT r.g, SUM(r.w * s.v) AS total FROM r, s WHERE r.k = s.k "
      "GROUP BY r.g");
  ASSERT_EQ(result.rows.size(), expected.size());
  for (const Row& row : result.rows) {
    EXPECT_NEAR(row[1].AsDouble(), expected.at(row[0].AsInt()),
                1e-6 * (1 + std::abs(expected.at(row[0].AsInt()))));
  }
}

TEST_P(DifferentialTest, OrderByLimitMatchesSortedPrefix) {
  Dataset data = MakeData(GetParam() ^ 0x44, 250, 0, 1000);
  Database db;
  Load(db, data);

  std::vector<double> ws = data.r_w;
  std::sort(ws.begin(), ws.end(), std::greater<double>());
  auto result = MustQuery(db, "SELECT w FROM r ORDER BY w DESC LIMIT 10");
  ASSERT_EQ(result.rows.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(result.rows[i][0].AsDouble(), ws[i]);
  }
}

TEST_P(DifferentialTest, DistinctMatchesSetSize) {
  Dataset data = MakeData(GetParam() ^ 0x55, 500, 0, 7);
  Database db;
  Load(db, data);

  std::set<std::pair<int64_t, int64_t>> unique;
  for (const auto& key : data.r_keys) unique.insert({key[0], key[1]});
  auto result = MustQuery(db, "SELECT DISTINCT k, g FROM r");
  EXPECT_EQ(result.rows.size(), unique.size());
}

TEST_P(DifferentialTest, ArgmaxViaRowNumberMatches) {
  // The paper's argmax pattern (§3.4) against a direct computation.
  Dataset data = MakeData(GetParam() ^ 0x66, 300, 0, 25);
  Database db;
  Load(db, data);

  // Expected: for each k, the g of the maximal w (ties by smaller g).
  struct Best {
    double w = -1;
    int64_t g = 0;
  };
  std::map<int64_t, Best> expected;
  for (size_t i = 0; i < data.r_keys.size(); ++i) {
    Best& b = expected[data.r_keys[i][0]];
    double w = data.r_w[i];
    if (w > b.w || (w == b.w && data.r_keys[i][1] < b.g)) {
      b.w = w;
      b.g = data.r_keys[i][1];
    }
  }
  auto result = MustQuery(
      db,
      "SELECT x.k, x.g FROM (SELECT k, g, ROW_NUMBER() OVER("
      "PARTITION BY k ORDER BY w DESC, g) AS rn FROM r) AS x "
      "WHERE x.rn = 1");
  ASSERT_EQ(result.rows.size(), expected.size());
  for (const Row& row : result.rows) {
    EXPECT_EQ(row[1].AsInt(), expected.at(row[0].AsInt()).g)
        << "k=" << row[0].AsInt();
  }
}

TEST_P(DifferentialTest, AllJoinStrategiesAgree) {
  Dataset data = MakeData(GetParam() ^ 0x77, 150, 150, 10);
  const char* query =
      "SELECT r.k, r.g, s.v FROM r, s WHERE r.k = s.k ORDER BY 1, 2, 3";
  std::vector<std::vector<std::string>> results;
  for (JoinStrategy js : {JoinStrategy::kHash, JoinStrategy::kSortMerge,
                          JoinStrategy::kNestedLoop}) {
    EngineConfig config;
    config.join_strategy = js;
    Database db{config};
    Load(db, data);
    results.push_back(
        ::bornsql::testing::RowStrings(MustQuery(db, query), false));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005));

}  // namespace
}  // namespace bornsql::engine
