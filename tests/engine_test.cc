// End-to-end SQL semantics tests against the Database facade.
#include "engine/database.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;
using ::bornsql::testing::RowStrings;

class EngineTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(EngineTest, SelectConstant) {
  auto r = MustQuery(db_, "SELECT 1 + 2 AS x, 'a' || 'b' AS s");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsText(), "ab");
  EXPECT_EQ(r.column_names[0], "x");
}

TEST_F(EngineTest, CreateInsertSelect) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b TEXT);"
      "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')"));
  auto r = MustQuery(db_, "SELECT b FROM t WHERE a >= 2 ORDER BY a DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsText(), "z");
  EXPECT_EQ(r.rows[1][0].AsText(), "y");
}

TEST_F(EngineTest, InsertCoercesDeclaredTypes) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, w REAL); INSERT INTO t VALUES (1.9, 2)"));
  auto r = MustQuery(db_, "SELECT a, w FROM t");
  EXPECT_TRUE(r.rows[0][0].is_int());
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_TRUE(r.rows[0][1].is_double());
}

TEST_F(EngineTest, DuplicateTableFailsUnlessIfNotExists) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript("CREATE TABLE t (a INTEGER)"));
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a INTEGER)").ok());
  BORNSQL_EXPECT_OK(db_.ExecuteScript("CREATE TABLE IF NOT EXISTS t (a INTEGER)"));
}

TEST_F(EngineTest, DropTable) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript("CREATE TABLE t (a INTEGER)"));
  BORNSQL_ASSERT_OK(db_.ExecuteScript("DROP TABLE t"));
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
  BORNSQL_EXPECT_OK(db_.ExecuteScript("DROP TABLE IF EXISTS t"));
}

TEST_F(EngineTest, SelectStarExpandsAndQualifies) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);"
      "INSERT INTO a VALUES (1); INSERT INTO b VALUES (2)"));
  auto r = MustQuery(db_, "SELECT * FROM a, b");
  ASSERT_EQ(r.column_names.size(), 2u);
  auto r2 = MustQuery(db_, "SELECT b.* FROM a, b");
  ASSERT_EQ(r2.column_names.size(), 1u);
  EXPECT_EQ(r2.rows[0][0].AsInt(), 2);
}

TEST_F(EngineTest, WhereThreeValuedLogic) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (NULL), (2)"));
  // NULL rows fail the predicate.
  auto r = MustQuery(db_, "SELECT a FROM t WHERE a > 0");
  EXPECT_EQ(r.rows.size(), 2u);
  auto r2 = MustQuery(db_, "SELECT a FROM t WHERE a IS NULL");
  EXPECT_EQ(r2.rows.size(), 1u);
  auto r3 = MustQuery(db_, "SELECT a FROM t WHERE NOT (a > 0)");
  EXPECT_EQ(r3.rows.size(), 0u);
}

TEST_F(EngineTest, IntegerDivisionAndModulo) {
  auto r = MustQuery(db_, "SELECT 1702 / 100, 1702 % 100, 7 / 2.0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 17);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 3.5);
}

TEST_F(EngineTest, DivisionByZeroYieldsNull) {
  auto r = MustQuery(db_, "SELECT 1 / 0, 1.0 / 0.0, 1 % 0");
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EngineTest, ScalarFunctions) {
  auto r = MustQuery(db_,
                     "SELECT POW(2, 10), LN(1), ABS(-3), LOWER('AbC'), "
                     "LENGTH('hello'), COALESCE(NULL, NULL, 7)");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 1024.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 0.0);
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
  EXPECT_EQ(r.rows[0][3].AsText(), "abc");
  EXPECT_EQ(r.rows[0][4].AsInt(), 5);
  EXPECT_EQ(r.rows[0][5].AsInt(), 7);
}

TEST_F(EngineTest, LnOfNonPositiveIsNull) {
  auto r = MustQuery(db_, "SELECT LN(0), LN(-2)");
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(EngineTest, CommaJoinBecomesEquiJoin) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE x (n INTEGER, w REAL);"
      "CREATE TABLE y (n INTEGER, k INTEGER);"
      "INSERT INTO x VALUES (1, 0.5), (2, 1.5);"
      "INSERT INTO y VALUES (1, 10), (1, 20), (3, 30)"));
  auto r = MustQuery(db_,
                     "SELECT x.n, y.k, x.w FROM x, y WHERE x.n = y.n");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "1|10|0.5");
  EXPECT_EQ(rows[1], "1|20|0.5");
}

TEST_F(EngineTest, CrossJoinProducesProduct) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (10), (20)"));
  auto r = MustQuery(db_, "SELECT x, y FROM a, b");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EngineTest, ExplicitInnerJoinOn) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER, y INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2, 20), (3, 30)"));
  auto r = MustQuery(db_, "SELECT a.x, b.y FROM a JOIN b ON a.x = b.x");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 20);
}

TEST_F(EngineTest, LeftJoinEmitsNulls) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER, y INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2, 20)"));
  auto r = MustQuery(db_,
                     "SELECT a.x, b.y FROM a LEFT JOIN b ON a.x = b.x "
                     "ORDER BY a.x");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[1][1].AsInt(), 20);
}

TEST_F(EngineTest, ThreeWayJoin) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (n INTEGER, v INTEGER);"
      "CREATE TABLE b (n INTEGER, w INTEGER);"
      "CREATE TABLE c (n INTEGER, u INTEGER);"
      "INSERT INTO a VALUES (1, 100), (2, 200);"
      "INSERT INTO b VALUES (1, 10), (2, 20);"
      "INSERT INTO c VALUES (1, 1)"));
  auto r = MustQuery(db_,
                     "SELECT a.v, b.w, c.u FROM a, b, c "
                     "WHERE a.n = b.n AND a.n = c.n");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 100);
}

TEST_F(EngineTest, NullKeysNeverJoin) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);"
      "INSERT INTO a VALUES (NULL), (1); INSERT INTO b VALUES (NULL), (1)"));
  auto r = MustQuery(db_, "SELECT 1 FROM a, b WHERE a.x = b.x");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EngineTest, GroupBySum) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (n INTEGER, w REAL);"
      "INSERT INTO t VALUES (1, 0.5), (1, 1.5), (2, 3.0), (3, NULL)"));
  auto r = MustQuery(db_, "SELECT n, SUM(w) AS w FROM t GROUP BY n");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "1|2");
  EXPECT_EQ(rows[1], "2|3");
  EXPECT_EQ(rows[2], "3|NULL");  // SUM of no non-NULL values
}

TEST_F(EngineTest, GlobalAggregatesOnEmptyInput) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript("CREATE TABLE t (a INTEGER)"));
  auto r = MustQuery(db_, "SELECT COUNT(*), SUM(a), MIN(a) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EngineTest, AggregateFunctions) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3), (NULL)"));
  auto r = MustQuery(db_,
                     "SELECT COUNT(*), COUNT(a), SUM(a), AVG(a), MIN(a), "
                     "MAX(a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_EQ(r.rows[0][2].AsInt(), 6);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 2.0);
  EXPECT_EQ(r.rows[0][4].AsInt(), 1);
  EXPECT_EQ(r.rows[0][5].AsInt(), 3);
}

TEST_F(EngineTest, GroupByExpressionAndHaving) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE p (id INTEGER, asjc INTEGER);"
      "INSERT INTO p VALUES (1, 1702), (2, 1702), (3, 2613), (4, 1801)"));
  auto r = MustQuery(db_,
                     "SELECT asjc / 100 AS k, COUNT(*) AS c FROM p "
                     "GROUP BY asjc / 100 HAVING COUNT(*) > 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 17);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(EngineTest, GroupByAliasSupported) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE p (asjc INTEGER); INSERT INTO p VALUES (1702), (2613)"));
  auto r = MustQuery(db_, "SELECT asjc / 100 AS k, COUNT(*) FROM p GROUP BY k");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, AggregateOverJoin) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE x (n INTEGER, w REAL);"
      "CREATE TABLE y (n INTEGER, v REAL);"
      "INSERT INTO x VALUES (1, 2.0), (2, 3.0);"
      "INSERT INTO y VALUES (1, 10.0), (1, 20.0), (2, 30.0)"));
  auto r = MustQuery(db_,
                     "SELECT x.n AS n, SUM(x.w * y.v) AS s FROM x, y "
                     "WHERE x.n = y.n GROUP BY x.n");
  auto rows = RowStrings(r);
  EXPECT_EQ(rows[0], "1|60");
  EXPECT_EQ(rows[1], "2|90");
}

TEST_F(EngineTest, RowNumberWindow) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (n INTEGER, k INTEGER, w REAL);"
      "INSERT INTO t VALUES (1, 10, 0.5), (1, 20, 0.9), (2, 10, 0.3)"));
  auto r = MustQuery(
      db_,
      "SELECT n, k FROM (SELECT n, k, ROW_NUMBER() OVER("
      "PARTITION BY n ORDER BY w DESC) AS r FROM t) AS ranked WHERE r = 1");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "1|20");
  EXPECT_EQ(rows[1], "2|10");
}

TEST_F(EngineTest, UnionAll) {
  auto r = MustQuery(db_,
                     "SELECT 1 AS x UNION ALL SELECT 2 UNION ALL SELECT 1");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.column_names[0], "x");
}

TEST_F(EngineTest, UnionAllArityMismatchFails) {
  EXPECT_FALSE(db_.Execute("SELECT 1 UNION ALL SELECT 1, 2").ok());
}

TEST_F(EngineTest, Distinct) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (1), (2)"));
  auto r = MustQuery(db_, "SELECT DISTINCT a FROM t");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, OrderByLimitOffset) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); "
      "INSERT INTO t VALUES (5), (3), (1), (4), (2)"));
  auto r = MustQuery(db_, "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(EngineTest, OrderByOrdinal) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 9), (2, 8)"));
  auto r = MustQuery(db_, "SELECT a, b FROM t ORDER BY 2");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(EngineTest, CteBasic) {
  auto r = MustQuery(db_,
                     "WITH one AS (SELECT 1 AS x), two AS (SELECT x + 1 AS x "
                     "FROM one) SELECT x FROM two");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(EngineTest, CteReferencedTwice) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (n INTEGER, w REAL);"
      "INSERT INTO t VALUES (1, 1.0), (1, 2.0), (2, 5.0)"));
  auto r = MustQuery(
      db_,
      "WITH s AS (SELECT n, SUM(w) AS w FROM t GROUP BY n) "
      "SELECT a.n, a.w / b.total AS frac FROM s AS a, "
      "(SELECT SUM(w) AS total FROM s) AS b");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "1|0.375");
  EXPECT_EQ(rows[1], "2|0.625");
}

TEST_F(EngineTest, CteShadowsTable) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (100)"));
  auto r = MustQuery(db_, "WITH t AS (SELECT 1 AS a) SELECT a FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(EngineTest, PrimaryKeyRejectsDuplicates) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);"
      "INSERT INTO t VALUES (1, 'a')"));
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 'b')").ok());
}

TEST_F(EngineTest, OnConflictDoNothing) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);"
      "INSERT INTO t VALUES (1, 'a');"
      "INSERT INTO t VALUES (1, 'b') ON CONFLICT (id) DO NOTHING"));
  auto r = MustQuery(db_, "SELECT v FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsText(), "a");
}

TEST_F(EngineTest, OnConflictDoUpdateAccumulates) {
  // The paper's incremental-learning primitive (§3.2).
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k));"
      "INSERT INTO corpus VALUES ('f1', 1, 1.5);"
      "INSERT INTO corpus (j, k, w) VALUES ('f1', 1, 2.0), ('f2', 1, 0.5) "
      "ON CONFLICT (j, k) DO UPDATE SET w = corpus.w + excluded.w"));
  auto r = MustQuery(db_, "SELECT j, w FROM corpus ORDER BY j");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsDouble(), 0.5);
}

TEST_F(EngineTest, OnConflictTargetMustMatchKey) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)"));
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 2) "
                           "ON CONFLICT (b) DO NOTHING")
                   .ok());
}

TEST_F(EngineTest, CreateUniqueIndexEnablesOnConflict) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (j TEXT, w REAL);"
      "CREATE UNIQUE INDEX t_j ON t (j);"
      "INSERT INTO t VALUES ('a', 1.0);"
      "INSERT INTO t VALUES ('a', 2.0) ON CONFLICT (j) "
      "DO UPDATE SET w = t.w + excluded.w"));
  auto r = MustQuery(db_, "SELECT w FROM t");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 3.0);
}

TEST_F(EngineTest, UpdateWithWhere) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b INTEGER);"
      "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)"));
  auto r = db_.Execute("UPDATE t SET b = a * 10 WHERE a >= 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 2u);
  auto check = MustQuery(db_, "SELECT SUM(b) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt(), 50);
}

TEST_F(EngineTest, DeleteWithWhere) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3)"));
  auto r = db_.Execute("DELETE FROM t WHERE a % 2 = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_affected, 2u);
  auto check = MustQuery(db_, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(check.rows[0][0].AsInt(), 1);
}

TEST_F(EngineTest, CreateTableAsSelect) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);"
      "CREATE TABLE t2 AS SELECT a * 10 AS b FROM t"));
  auto r = MustQuery(db_, "SELECT SUM(b) FROM t2");
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
}

TEST_F(EngineTest, InsertFromSelect) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE src (a INTEGER); INSERT INTO src VALUES (1), (2);"
      "CREATE TABLE dst (a INTEGER, doubled INTEGER);"
      "INSERT INTO dst (a, doubled) SELECT a, a * 2 FROM src"));
  auto r = MustQuery(db_, "SELECT SUM(doubled) FROM dst");
  EXPECT_EQ(r.rows[0][0].AsInt(), 6);
}

TEST_F(EngineTest, InsertWithColumnSubsetFillsNull) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER, b TEXT); INSERT INTO t (a) VALUES (1)"));
  auto r = MustQuery(db_, "SELECT b FROM t");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(EngineTest, AmbiguousColumnFails) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)"));
  EXPECT_FALSE(db_.Execute("SELECT x FROM a, b").ok());
}

TEST_F(EngineTest, UnknownColumnFails) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript("CREATE TABLE a (x INTEGER)"));
  EXPECT_FALSE(db_.Execute("SELECT nope FROM a").ok());
}

TEST_F(EngineTest, TableAliases) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (n INTEGER, w REAL);"
      "INSERT INTO t VALUES (1, 2.0), (2, 4.0)"));
  auto r = MustQuery(db_,
                     "SELECT a.w * b.w AS p FROM t AS a, t AS b "
                     "WHERE a.n = 1 AND b.n = 2");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 8.0);
}

TEST_F(EngineTest, CaseExpression) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (-1), (0), (5)"));
  auto r = MustQuery(db_,
                     "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' "
                     "ELSE 'zero' END AS s FROM t ORDER BY a");
  EXPECT_EQ(r.rows[0][0].AsText(), "neg");
  EXPECT_EQ(r.rows[1][0].AsText(), "zero");
  EXPECT_EQ(r.rows[2][0].AsText(), "pos");
}

TEST_F(EngineTest, LikeAndInList) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE t (s TEXT); "
      "INSERT INTO t VALUES ('abstract:robot'), ('pubname:x'), ('keyword:y')"));
  auto r = MustQuery(db_, "SELECT s FROM t WHERE s LIKE 'abstract:%'");
  ASSERT_EQ(r.rows.size(), 1u);
  auto r2 = MustQuery(db_, "SELECT s FROM t WHERE s IN ('pubname:x', 'zzz')");
  EXPECT_EQ(r2.rows.size(), 1u);
}

TEST_F(EngineTest, ScalarResultHelper) {
  auto r = MustQuery(db_, "SELECT 41 + 1");
  auto v = r.ScalarValue();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
}

TEST_F(EngineTest, NonTrivialPredicatePlacement) {
  // Mixed single-table + cross-table + non-equi conjuncts.
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE a (n INTEGER, v INTEGER);"
      "CREATE TABLE b (n INTEGER, w INTEGER);"
      "INSERT INTO a VALUES (1, 5), (2, 50), (3, 500);"
      "INSERT INTO b VALUES (1, 6), (2, 7), (3, 400)"));
  auto r = MustQuery(db_,
                     "SELECT a.n FROM a, b WHERE a.n = b.n AND a.v > 10 "
                     "AND a.v > b.w");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "2");
  EXPECT_EQ(rows[1], "3");
}

// The same semantics must hold under every join strategy / CTE mode.
class EngineConfigTest
    : public ::testing::TestWithParam<std::pair<JoinStrategy, bool>> {};

TEST_P(EngineConfigTest, JoinAggregatePipelineIsConfigInvariant) {
  EngineConfig config;
  config.join_strategy = GetParam().first;
  config.materialize_ctes = GetParam().second;
  Database db{config};
  BORNSQL_ASSERT_OK(db.ExecuteScript(
      "CREATE TABLE x (n INTEGER, j TEXT, w REAL);"
      "CREATE TABLE y (n INTEGER, k INTEGER, w REAL);"
      "INSERT INTO x VALUES (1, 'a', 1.0), (1, 'b', 2.0), (2, 'a', 3.0),"
      " (3, 'c', 1.0);"
      "INSERT INTO y VALUES (1, 17, 1.0), (2, 26, 1.0), (3, 17, 1.0)"));
  auto r = MustQuery(
      db,
      "WITH xy AS (SELECT x.n AS n, x.j AS j, y.k AS k, x.w * y.w AS w "
      "FROM x, y WHERE x.n = y.n) "
      "SELECT j, k, SUM(w) AS w FROM xy GROUP BY j, k ORDER BY j, k");
  auto rows = RowStrings(r, /*sorted=*/false);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], "a|17|1");
  EXPECT_EQ(rows[1], "a|26|3");
  EXPECT_EQ(rows[2], "b|17|2");
  EXPECT_EQ(rows[3], "c|17|1");
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EngineConfigTest,
    ::testing::Values(std::make_pair(JoinStrategy::kHash, true),
                      std::make_pair(JoinStrategy::kHash, false),
                      std::make_pair(JoinStrategy::kSortMerge, true),
                      std::make_pair(JoinStrategy::kSortMerge, false),
                      std::make_pair(JoinStrategy::kNestedLoop, true)));

}  // namespace
}  // namespace bornsql::engine
