// Tests for the extended engine surface: subqueries (scalar / IN / EXISTS),
// EXPLAIN, RANK / DENSE_RANK, string functions, derived-table pull-up and
// index-join equivalence.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"
#include "tests/test_util.h"

namespace bornsql::engine {
namespace {

using ::bornsql::testing::MustQuery;
using ::bornsql::testing::RowStrings;

class FeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BORNSQL_ASSERT_OK(db_.ExecuteScript(
        "CREATE TABLE t (a INTEGER, b TEXT);"
        "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'y');"
        "CREATE TABLE u (a INTEGER);"
        "INSERT INTO u VALUES (2), (3)"));
  }
  Database db_;
};

TEST_F(FeaturesTest, ScalarSubqueryInSelect) {
  auto r = MustQuery(db_, "SELECT (SELECT MAX(a) FROM t) + 1 AS v");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
}

TEST_F(FeaturesTest, ScalarSubqueryInWhere) {
  auto r = MustQuery(db_,
                     "SELECT a FROM t WHERE a = (SELECT MIN(a) FROM u)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(FeaturesTest, ScalarSubqueryEmptyIsNull) {
  auto r = MustQuery(db_, "SELECT (SELECT a FROM t WHERE a > 100) AS v");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(FeaturesTest, ScalarSubqueryMultiRowFails) {
  EXPECT_FALSE(db_.Execute("SELECT (SELECT a FROM t) AS v").ok());
}

TEST_F(FeaturesTest, InSubquery) {
  auto r = MustQuery(db_, "SELECT a FROM t WHERE a IN (SELECT a FROM u)");
  auto rows = RowStrings(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "2");
  EXPECT_EQ(rows[1], "3");
}

TEST_F(FeaturesTest, NotInSubquery) {
  auto r = MustQuery(db_,
                     "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(FeaturesTest, NotInSubqueryWithNullIsEmpty) {
  // Standard three-valued trap: NOT IN a set containing NULL is never true.
  BORNSQL_ASSERT_OK(db_.ExecuteScript("INSERT INTO u VALUES (NULL)"));
  auto r = MustQuery(db_,
                     "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(FeaturesTest, ExistsAndNotExists) {
  auto r = MustQuery(db_,
                     "SELECT COUNT(*) FROM t WHERE EXISTS "
                     "(SELECT 1 FROM u WHERE a = 2)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  auto r2 = MustQuery(db_,
                      "SELECT COUNT(*) FROM t WHERE NOT EXISTS "
                      "(SELECT 1 FROM u WHERE a = 99)");
  EXPECT_EQ(r2.rows[0][0].AsInt(), 4);
}

TEST_F(FeaturesTest, CorrelatedSubqueryRejected) {
  // Correlated subqueries are outside the dialect; the inner bind fails.
  EXPECT_FALSE(
      db_.Execute("SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE u.a = t.a)")
          .ok());
}

TEST_F(FeaturesTest, DeleteWithInSubquery) {
  auto r = db_.Execute("DELETE FROM t WHERE a IN (SELECT a FROM u)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 2u);
}

TEST_F(FeaturesTest, UpdateWithScalarSubquery) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "UPDATE t SET a = (SELECT MAX(a) FROM u) WHERE b = 'x'"));
  auto r = MustQuery(db_, "SELECT a FROM t WHERE b = 'x'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(FeaturesTest, InsertWithScalarSubquery) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "INSERT INTO t VALUES ((SELECT MAX(a) FROM t) + 10, 'max')"));
  auto r = MustQuery(db_, "SELECT a FROM t WHERE b = 'max'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 14);
}

TEST_F(FeaturesTest, SubqueryCanReferenceCte) {
  auto r = MustQuery(db_,
                     "WITH big AS (SELECT a FROM t WHERE a >= 3) "
                     "SELECT COUNT(*) FROM t WHERE a IN (SELECT a FROM big)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(FeaturesTest, ExplainShowsPlanTree) {
  auto r = MustQuery(db_,
                     "EXPLAIN SELECT t.a, COUNT(*) FROM t, u "
                     "WHERE t.a = u.a GROUP BY t.a ORDER BY t.a");
  ASSERT_EQ(r.column_names.size(), 1u);
  EXPECT_EQ(r.column_names[0], "plan");
  std::string plan;
  for (const Row& row : r.rows) plan += row[0].AsText() + "\n";
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Join"), std::string::npos) << plan;
  EXPECT_NE(plan.find("SeqScan(t"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Sort"), std::string::npos) << plan;
}

TEST_F(FeaturesTest, ExplainShowsIndexJoin) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript("CREATE INDEX t_a ON t (a)"));
  auto r = MustQuery(db_, "EXPLAIN SELECT 1 FROM t, u WHERE t.a = u.a");
  std::string plan;
  for (const Row& row : r.rows) plan += row[0].AsText() + "\n";
  EXPECT_NE(plan.find("IndexJoin(t"), std::string::npos) << plan;
}

TEST_F(FeaturesTest, ExplainShowsPulledUpDerivedTable) {
  // A simple-projection derived table disappears from the plan: the scan
  // runs on the base table directly.
  auto r = MustQuery(db_,
                     "EXPLAIN SELECT s.n FROM "
                     "(SELECT a AS n FROM t) AS s, u WHERE s.n = u.a");
  std::string plan;
  for (const Row& row : r.rows) plan += row[0].AsText() + "\n";
  EXPECT_NE(plan.find("SeqScan(t"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Relabel"), std::string::npos) << plan;
}

TEST_F(FeaturesTest, RankAndDenseRank) {
  BORNSQL_ASSERT_OK(db_.ExecuteScript(
      "CREATE TABLE s (g INTEGER, v INTEGER);"
      "INSERT INTO s VALUES (1, 10), (1, 10), (1, 20), (2, 5)"));
  auto r = MustQuery(db_,
                     "SELECT g, v, "
                     "ROW_NUMBER() OVER(PARTITION BY g ORDER BY v) AS rn, "
                     "RANK() OVER(PARTITION BY g ORDER BY v) AS rk, "
                     "DENSE_RANK() OVER(PARTITION BY g ORDER BY v) AS dr "
                     "FROM s ORDER BY g, v, rn");
  auto rows = RowStrings(r, /*sorted=*/false);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], "1|10|1|1|1");
  EXPECT_EQ(rows[1], "1|10|2|1|1");  // tie: same rank, next row_number
  EXPECT_EQ(rows[2], "1|20|3|3|2");  // rank gaps, dense_rank does not
  EXPECT_EQ(rows[3], "2|5|1|1|1");   // fresh partition
}

TEST_F(FeaturesTest, RankRequiresOrderBy) {
  EXPECT_FALSE(db_.Execute("SELECT RANK() OVER(PARTITION BY a) FROM t").ok());
}

TEST_F(FeaturesTest, StringFunctions) {
  auto r = MustQuery(db_,
                     "SELECT TRIM('  hi  '), REPLACE('a-b-c', '-', '+'), "
                     "INSTR('hello', 'll'), INSTR('hello', 'zz')");
  EXPECT_EQ(r.rows[0][0].AsText(), "hi");
  EXPECT_EQ(r.rows[0][1].AsText(), "a+b+c");
  EXPECT_EQ(r.rows[0][2].AsInt(), 3);
  EXPECT_EQ(r.rows[0][3].AsInt(), 0);
}

TEST_F(FeaturesTest, PullUpPreservesExpressionSemantics) {
  // The derived table computes an expression; references must see the
  // computed value after pull-up.
  auto r = MustQuery(db_,
                     "SELECT s.label FROM "
                     "(SELECT a AS n, 'row:' || b AS label FROM t) AS s, u "
                     "WHERE s.n = u.a ORDER BY s.label");
  auto rows = RowStrings(r, /*sorted=*/false);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "row:y");
  EXPECT_EQ(rows[1], "row:z");
}

TEST_F(FeaturesTest, PullUpSkipsAggregatingSubqueries) {
  // Aggregating derived tables must not be merged; results stay correct.
  auto r = MustQuery(db_,
                     "SELECT s.c FROM "
                     "(SELECT b, COUNT(*) AS c FROM t GROUP BY b) AS s "
                     "WHERE s.b = 'y'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

// Index joins must be a pure optimization: identical results with the
// feature on and off, over randomized data.
class IndexJoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexJoinEquivalenceTest, MatchesHashJoin) {
  Rng rng(GetParam());
  std::string inserts_a = "INSERT INTO a VALUES ", inserts_b =
      "INSERT INTO b VALUES ";
  for (int i = 0; i < 200; ++i) {
    if (i > 0) {
      inserts_a += ", ";
      inserts_b += ", ";
    }
    inserts_a += StrFormat("(%llu, %llu)", rng.Uniform(40), rng.Uniform(100));
    inserts_b += StrFormat("(%llu, %llu)", rng.Uniform(40), rng.Uniform(100));
  }
  const char* query =
      "SELECT a.k, a.v, b.v FROM a, b WHERE a.k = b.k ORDER BY 1, 2, 3";

  EngineConfig with_index;
  EngineConfig without_index;
  without_index.use_index_joins = false;
  Database db1{with_index}, db2{without_index};
  for (Database* db : {&db1, &db2}) {
    BORNSQL_ASSERT_OK(db->ExecuteScript(
        "CREATE TABLE a (k INTEGER, v INTEGER);"
        "CREATE TABLE b (k INTEGER, v INTEGER);"
        "CREATE INDEX a_k ON a (k); CREATE INDEX b_k ON b (k)"));
    BORNSQL_ASSERT_OK(db->ExecuteScript(inserts_a));
    BORNSQL_ASSERT_OK(db->ExecuteScript(inserts_b));
  }
  auto r1 = MustQuery(db1, query);
  auto r2 = MustQuery(db2, query);
  EXPECT_EQ(RowStrings(r1, false), RowStrings(r2, false));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexJoinEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace bornsql::engine
