// End-to-end replica of the paper's §4 walkthrough on the synthetic Scopus
// database: preprocess, train on a subsample, learn the rest incrementally,
// deploy, classify, and print global/local explanations (Tables 3 & 4).
//
//   build/examples/scopus_pipeline [num_publications]
#include <cstdio>
#include <cstdlib>

#include "born/born_sql.h"
#include "common/timer.h"
#include "data/scopus.h"
#include "engine/database.h"

using bornsql::Status;
using bornsql::WallTimer;

namespace {

const char* ClassName(int64_t k) {
  switch (k) {
    case 17: return "Artificial Intelligence";
    case 18: return "Decision Sciences";
    case 26: return "Statistics and Probability";
    default: return "?";
  }
}

Status Run(size_t num_publications) {
  std::printf("synthesizing %zu publications (Scopus stand-in)...\n",
              num_publications);
  bornsql::data::ScopusOptions options;
  options.num_publications = num_publications;
  bornsql::data::ScopusSynthesizer synth(options);

  bornsql::engine::Database db;
  BORNSQL_RETURN_IF_ERROR(synth.Load(&db));
  for (const auto& [k, count] : synth.ClassDistribution()) {
    std::printf("  class %lld (%s): %zu publications\n",
                static_cast<long long>(k), ClassName(k), count);
  }

  bornsql::born::SqlSource source;
  source.x_parts = bornsql::data::ScopusSynthesizer::XParts();
  source.y = bornsql::data::ScopusSynthesizer::YQuery();
  bornsql::born::BornSqlClassifier clf(&db, "scopus", source);

  // Train on the first 90% of every 10-block (stationary subsample, §4.3),
  // then add the remaining items incrementally.
  WallTimer timer;
  BORNSQL_RETURN_IF_ERROR(
      clf.Fit("SELECT id AS n FROM publication WHERE id % 10 <= 8"));
  std::printf("fit (90%% of items): %.2fs\n", timer.ElapsedSeconds());
  timer.Reset();
  BORNSQL_RETURN_IF_ERROR(
      clf.PartialFit("SELECT id AS n FROM publication WHERE id % 10 = 9"));
  std::printf("partial fit (last 10%%): %.2fs\n", timer.ElapsedSeconds());

  BORNSQL_ASSIGN_OR_RETURN(int64_t features, clf.FeatureCount());
  std::printf("model: %lld features\n", static_cast<long long>(features));

  timer.Reset();
  BORNSQL_RETURN_IF_ERROR(clf.Deploy());
  std::printf("deploy: %.2fs\n", timer.ElapsedSeconds());

  // Classify a batch and report accuracy against the stored labels.
  timer.Reset();
  BORNSQL_ASSIGN_OR_RETURN(
      auto predictions,
      clf.Predict("SELECT id AS n FROM publication WHERE id <= 1000"));
  double elapsed = timer.ElapsedSeconds();
  size_t correct = 0;
  for (const auto& p : predictions) {
    const auto& pub = synth.publications()[p.n.AsInt() - 1];
    if (p.k.AsInt() == pub.asjc / 100) ++correct;
  }
  std::printf("classified %zu publications in %.2fs (%.2f ms/item), "
              "accuracy %.1f%%\n",
              predictions.size(), elapsed,
              1000.0 * elapsed / predictions.size(),
              100.0 * correct / predictions.size());

  // Table 3: global explanation, top three features per class.
  BORNSQL_ASSIGN_OR_RETURN(auto global, clf.ExplainGlobal(0));
  std::printf("\nglobal explanation (Table 3): top features per class\n");
  for (int64_t k : {17, 18, 26}) {
    int shown = 0;
    for (const auto& e : global) {
      if (e.k.AsInt() != k) continue;
      std::printf("  %2lld | %-40s | %.4f\n", static_cast<long long>(k),
                  e.j.c_str(), e.w);
      if (++shown == 3) break;
    }
  }

  // Table 4: local explanation for publication 13.
  BORNSQL_ASSIGN_OR_RETURN(auto local, clf.ExplainLocal("SELECT 13 AS n", 10));
  std::printf("\nlocal explanation for publication 13 (Table 4):\n");
  for (const auto& e : local) {
    std::printf("  %2s | %-40s | %.5f\n", e.k.ToString().c_str(),
                e.j.c_str(), e.w);
  }
  BORNSQL_ASSIGN_OR_RETURN(auto pred13, clf.Predict("SELECT 13 AS n"));
  if (!pred13.empty()) {
    std::printf("publication 13 predicted class: %s (actual %d)\n",
                pred13[0].k.ToString().c_str(),
                synth.publications()[12].asjc / 100);
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 10000;
  Status status = Run(n);
  if (!status.ok()) {
    std::fprintf(stderr, "scopus_pipeline failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
