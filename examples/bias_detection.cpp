// §5.4 "Explainability": using BornSQL's global explanation as an
// exploratory-data-analysis tool that spots under-represented categories
// before the data is fed to other ML pipelines.
//
// On the Adult census stand-in, the features
// 'native_country:Outlying-US(Guam-USVI-etc)' and
// 'native_country:Holand-Netherlands' have positive weight for the
// negative class and zero weight for the positive class — the signature of
// categories the training data does not represent.
//
//   build/examples/bias_detection
#include <cstdio>
#include <map>
#include <set>

#include "born/born_sql.h"
#include "data/adult.h"
#include "engine/database.h"

using bornsql::Status;

namespace {

Status Run() {
  bornsql::data::AdultOptions options;
  options.train_size = 8000;
  options.test_size = 1000;
  bornsql::data::AdultSynthesizer synth(options);
  bornsql::engine::Database db;
  BORNSQL_RETURN_IF_ERROR(synth.Load(&db));

  bornsql::born::SqlSource source;
  source.x_parts = synth.XParts("adult_train");
  source.y = bornsql::data::AdultSynthesizer::YQuery("adult_train");
  bornsql::born::BornSqlClassifier clf(&db, "adult", source);
  BORNSQL_RETURN_IF_ERROR(clf.Fit("SELECT id AS n FROM adult_train"));

  // Global explanation over every (feature, class) weight.
  BORNSQL_ASSIGN_OR_RETURN(auto global, clf.ExplainGlobal(0));

  // A feature is "one-sided" when it carries weight for exactly one class:
  // the model has never seen it with the other label.
  std::map<std::string, std::set<int64_t>> classes_seen;
  for (const auto& e : global) {
    if (e.w > 0) classes_seen[e.j].insert(e.k.AsInt());
  }
  std::printf("features seen with only ONE class label:\n");
  size_t one_sided = 0;
  for (const auto& [feature, classes] : classes_seen) {
    if (classes.size() != 1) continue;
    ++one_sided;
    if (feature.rfind("native_country:", 0) == 0) {
      std::printf("  %-55s only class %lld\n", feature.c_str(),
                  static_cast<long long>(*classes.begin()));
    }
  }
  std::printf("(%zu one-sided features total)\n\n", one_sided);

  // Confirm against the raw data, as the paper does.
  for (const char* country :
       {"Outlying-US(Guam-USVI-etc)", "Holand-Netherlands"}) {
    BORNSQL_ASSIGN_OR_RETURN(
        auto counts,
        db.Execute(std::string("SELECT COUNT(*), SUM(income) FROM "
                               "adult_train WHERE native_country = '") +
                   country + "'"));
    std::printf("'%s': %s training instances, %s positive\n", country,
                counts.rows[0][0].ToString().c_str(),
                counts.rows[0][1].ToString().c_str());
  }
  std::printf(
      "\nBoth categories are tiny and all-negative: any model trained on "
      "this data may discriminate on them. BornSQL surfaced that *before* "
      "any black-box training, directly from the model weights.\n");
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "bias_detection failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
