// Raw-document ingestion: the tsvector workflow of §4.2 end to end.
//
// PostgreSQL stores a vectorized abstract (tsvector) and unnests it in the
// q_x query; our portable equivalent vectorizes with text::Vectorize() at
// ingestion time into a (docid, term, freq) table. This example takes raw
// strings all the way to a trained, explained classifier.
//
//   build/examples/text_ingestion
#include <cstdio>

#include "born/born_sql.h"
#include "common/strings.h"
#include "engine/database.h"
#include "text/tokenizer.h"

using bornsql::Status;
using bornsql::StrFormat;

namespace {

struct RawDoc {
  const char* label;
  const char* text;
};

constexpr RawDoc kCorpus[] = {
    {"databases",
     "The query optimizer rewrites joins and pushes predicates into scans; "
     "indexes keep lookups fast even as tables grow."},
    {"databases",
     "Transactions guarantee isolation, and the write-ahead log makes "
     "recovery possible after a crash of the storage engine."},
    {"databases",
     "A B-tree index accelerates range scans, while hash indexes answer "
     "equality lookups on large tables."},
    {"databases",
     "Normalization splits tables to avoid anomalies; the planner joins "
     "them back at query time."},
    {"ml",
     "Gradient descent minimizes the loss function; the model's weights "
     "converge after many training epochs."},
    {"ml",
     "Classifiers generalize from labeled examples, and regularization "
     "keeps the weights from overfitting the training data."},
    {"ml",
     "The neural network learns features layer by layer, and "
     "backpropagation computes the gradients of the loss."},
    {"ml",
     "Cross validation estimates the accuracy of the classifier on unseen "
     "examples before deployment."},
};

Status Run() {
  bornsql::engine::Database db;
  BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(
      "CREATE TABLE document (id INTEGER PRIMARY KEY, label TEXT);"
      "CREATE TABLE doc_term (docid INTEGER, term TEXT, freq INTEGER);"
      "CREATE INDEX doc_term_docid ON doc_term (docid)"));

  // Ingest: tokenize + count each raw document (the tsvector step).
  int64_t id = 0;
  for (const RawDoc& doc : kCorpus) {
    ++id;
    BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(
        StrFormat("INSERT INTO document VALUES (%lld, '%s')",
                  static_cast<long long>(id), doc.label)));
    for (const auto& [term, count] : bornsql::text::Vectorize(doc.text)) {
      BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(StrFormat(
          "INSERT INTO doc_term VALUES (%lld, %s, %d)",
          static_cast<long long>(id), bornsql::SqlQuote(term).c_str(),
          count)));
    }
  }
  BORNSQL_ASSIGN_OR_RETURN(auto terms,
                           db.Execute("SELECT COUNT(*) FROM doc_term"));
  std::printf("ingested %zu documents, %s distinct (doc, term) rows\n",
              std::size(kCorpus), terms.rows[0][0].ToString().c_str());

  bornsql::born::SqlSource source;
  source.x_parts = {
      "SELECT docid AS n, 'term:' || term AS j, freq AS w FROM doc_term"};
  source.y = "SELECT id AS n, label AS k, 1.0 AS w FROM document";
  bornsql::born::BornSqlClassifier clf(&db, "textdemo", source);
  BORNSQL_RETURN_IF_ERROR(clf.Fit("SELECT id AS n FROM document"));
  BORNSQL_RETURN_IF_ERROR(clf.Deploy());

  // Classify two unseen raw sentences through the external-data path (§7):
  // vectorized client-side, never stored in the database.
  const char* queries[] = {
      "the optimizer picked an index scan for the join",
      "training the classifier required tuning the loss weights",
  };
  std::vector<bornsql::born::FeatureVector> items;
  for (const char* q : queries) {
    bornsql::born::FeatureVector x;
    for (const auto& [term, count] : bornsql::text::Vectorize(q)) {
      x.emplace_back("term:" + term, static_cast<double>(count));
    }
    items.push_back(std::move(x));
  }
  BORNSQL_ASSIGN_OR_RETURN(auto preds, clf.PredictExternal(items));
  for (const auto& p : preds) {
    std::printf("query %s -> %s\n", p.n.ToString().c_str(),
                p.k.ToString().c_str());
    std::printf("  \"%s\"\n", queries[p.n.AsInt()]);
  }

  // Why: the defining terms of each label.
  BORNSQL_ASSIGN_OR_RETURN(auto global, clf.ExplainGlobal(6));
  std::printf("top global weights:\n");
  for (const auto& e : global) {
    std::printf("  %-10s %-18s %.4f\n", e.k.ToString().c_str(), e.j.c_str(),
                e.w);
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "text_ingestion failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
