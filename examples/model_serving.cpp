// §7 "Cost-effective model serving": after deployment a Born model is just
// a tuple of hyper-parameters plus one weights table, and serving is plain
// SQL — no ML runtime. This example measures the storage footprint and
// serves a stream of requests straight off the weights table, then shows
// that the corpus can be dropped entirely if no more updates are planned.
//
//   build/examples/model_serving
#include <cstdio>

#include "born/born_sql.h"
#include "common/timer.h"
#include "data/newsgroups.h"
#include "engine/database.h"

using bornsql::Status;
using bornsql::WallTimer;

namespace {

Status Run() {
  bornsql::data::NewsgroupsOptions options;
  options.num_classes = 8;
  options.train_size = 3000;
  options.test_size = 500;
  bornsql::data::NewsgroupsSynthesizer synth(options);
  bornsql::engine::Database db;
  BORNSQL_RETURN_IF_ERROR(synth.Load(&db));

  bornsql::born::SqlSource source;
  source.x_parts = bornsql::data::NewsgroupsSynthesizer::XParts("test");
  source.y = bornsql::data::NewsgroupsSynthesizer::YQuery("test");
  // Train from the train split...
  {
    bornsql::born::SqlSource train_source;
    train_source.x_parts =
        bornsql::data::NewsgroupsSynthesizer::XParts("train");
    train_source.y = bornsql::data::NewsgroupsSynthesizer::YQuery("train");
    bornsql::born::BornSqlClassifier trainer(&db, "serving", train_source);
    BORNSQL_RETURN_IF_ERROR(trainer.Fit("SELECT docid AS n FROM doc_train"));
    BORNSQL_RETURN_IF_ERROR(trainer.Deploy());
  }
  // ...serve with a classifier wired to the *test* tables (the corpus,
  // weights and params tables are shared state inside the database, so a
  // fresh driver instance picks the model up by name).
  bornsql::born::BornSqlClassifier server(&db, "serving", source);
  BORNSQL_RETURN_IF_ERROR(server.Deploy());

  // Storage cost: hyper-parameters + weights rows (the paper's point).
  BORNSQL_ASSIGN_OR_RETURN(auto weights,
                           db.Execute("SELECT COUNT(*) FROM serving_weights"));
  std::printf("deployed model = params row + %s weight rows "
              "(three columns each)\n",
              weights.rows[0][0].ToString().c_str());

  // Serve a request stream.
  WallTimer timer;
  size_t correct = 0, total = 0;
  BORNSQL_ASSIGN_OR_RETURN(
      auto batch, server.Predict("SELECT docid AS n FROM doc_test"));
  for (const auto& p : batch) {
    ++total;
    if (p.k.AsInt() == synth.test()[p.n.AsInt() - 1].label) ++correct;
  }
  double elapsed = timer.ElapsedSeconds();
  std::printf("served %zu requests in %.2fs (%.2f ms/request), "
              "accuracy %.1f%%\n",
              total, elapsed, 1000.0 * elapsed / total,
              100.0 * correct / total);

  // If the model will never be updated again, the corpus can go: inference
  // only reads serving_weights + params.
  BORNSQL_RETURN_IF_ERROR(db.ExecuteScript("DROP TABLE serving_corpus"));
  BORNSQL_ASSIGN_OR_RETURN(auto still,
                           server.Predict("SELECT 1 AS n"));
  std::printf("after dropping the corpus the model still serves: doc 1 -> "
              "class %s\n",
              still.empty() ? "?" : still[0].k.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "model_serving failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
