// §7 "Continuous learning and privacy regulations": a consent-withdrawal
// loop. Users contribute documents; when a user withdraws consent their
// rows are unlearned from the model and deleted from the database, and the
// example verifies the model is *exactly* the model retrained without them
// (Def. 2.2).
//
//   build/examples/privacy_unlearning
#include <cmath>
#include <cstdio>

#include "born/born_sql.h"
#include "common/rng.h"
#include "common/strings.h"
#include "engine/database.h"

using bornsql::Status;
using bornsql::StrFormat;

namespace {

constexpr int kUsers = 30;
constexpr int kDocsPerUser = 10;

Status LoadMessages(bornsql::engine::Database& db, uint64_t seed) {
  BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(
      "CREATE TABLE messages (id INTEGER PRIMARY KEY, user_id INTEGER, "
      "label INTEGER);"
      "CREATE TABLE message_word (msgid INTEGER, word TEXT, freq INTEGER)"));
  bornsql::Rng rng(seed);
  int64_t id = 0;
  for (int user = 0; user < kUsers; ++user) {
    for (int d = 0; d < kDocsPerUser; ++d) {
      ++id;
      int label = rng.Bernoulli(0.5) ? 1 : 0;
      BORNSQL_RETURN_IF_ERROR(
          db.ExecuteScript(StrFormat(
              "INSERT INTO messages VALUES (%lld, %d, %d)",
              static_cast<long long>(id), user, label)));
      for (int w = 0; w < 6; ++w) {
        // Class-tilted vocabulary plus user-specific words (the ones a
        // deletion request must actually remove from the model).
        std::string word =
            rng.Bernoulli(0.7)
                ? StrFormat("topic%d_%llu", label, rng.Uniform(20))
                : StrFormat("user%d_word%llu", user, rng.Uniform(5));
        BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(StrFormat(
            "INSERT INTO message_word VALUES (%lld, '%s', 1)",
            static_cast<long long>(id), word.c_str())));
      }
    }
  }
  return Status::OK();
}

bornsql::born::SqlSource Source() {
  bornsql::born::SqlSource source;
  source.x_parts = {
      "SELECT msgid AS n, 'word:' || word AS j, freq AS w "
      "FROM message_word"};
  source.y = "SELECT id AS n, label AS k, 1.0 AS w FROM messages";
  return source;
}

Status Run() {
  bornsql::engine::Database db;
  BORNSQL_RETURN_IF_ERROR(LoadMessages(db, 7));

  bornsql::born::BornSqlClassifier model(&db, "live", Source());
  BORNSQL_RETURN_IF_ERROR(model.Fit("SELECT id AS n FROM messages"));
  BORNSQL_ASSIGN_OR_RETURN(int64_t before, model.CorpusEntries());
  std::printf("model trained on %d users, corpus entries: %lld\n", kUsers,
              static_cast<long long>(before));

  // Users 3, 11 and 27 withdraw consent ("right to be forgotten").
  for (int user : {3, 11, 27}) {
    std::string user_items =
        StrFormat("SELECT id AS n FROM messages WHERE user_id = %d", user);
    // The trigger the paper sketches: unlearn, then delete the raw data.
    BORNSQL_RETURN_IF_ERROR(model.Unlearn(user_items));
    BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(StrFormat(
        "DELETE FROM message_word WHERE msgid IN (%s);"
        "DELETE FROM messages WHERE user_id = %d",
        user_items.c_str(), user)));
    std::printf("user %d unlearned and deleted\n", user);
  }

  // Verification: retrain a fresh model on what is left and compare
  // probabilities item by item (exact unlearning, Def. 2.2).
  bornsql::born::BornSqlClassifier retrained(&db, "fresh", Source());
  BORNSQL_RETURN_IF_ERROR(retrained.Fit("SELECT id AS n FROM messages"));

  BORNSQL_ASSIGN_OR_RETURN(auto live_p,
                           model.PredictProba("SELECT id AS n FROM messages"));
  BORNSQL_ASSIGN_OR_RETURN(
      auto fresh_p, retrained.PredictProba("SELECT id AS n FROM messages"));
  if (live_p.size() != fresh_p.size()) {
    return Status::Internal("probability row counts differ");
  }
  double max_diff = 0.0;
  for (size_t i = 0; i < live_p.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(live_p[i].p - fresh_p[i].p));
  }
  std::printf(
      "unlearned model vs retrained-from-scratch: max |delta P| = %.2e "
      "over %zu predictions -> %s\n",
      max_diff, live_p.size(),
      max_diff < 1e-7 ? "EXACT (Def. 2.2 holds)" : "MISMATCH");

  // Forgotten users' personal words carry no residual mass.
  BORNSQL_ASSIGN_OR_RETURN(
      auto residue,
      db.Execute("SELECT COUNT(*) FROM live_corpus "
                 "WHERE j LIKE 'word:user3_%' AND ABS(w) > 1e-9"));
  std::printf("residual corpus mass on user 3's words: %s rows\n",
              residue.rows[0][0].ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "privacy_unlearning failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
