// Quickstart: the full BornSQL API on a toy database, in one file.
//
//   build/examples/quickstart
//
// Creates a tiny document table, trains a Born classifier purely through
// SQL, predicts, explains, incrementally learns and unlearns.
#include <cstdio>

#include "born/born_sql.h"
#include "engine/database.h"

using bornsql::Status;
using bornsql::engine::Database;

namespace {

Status Run() {
  Database db;

  // 1. A normalized database: documents and their words.
  BORNSQL_RETURN_IF_ERROR(db.ExecuteScript(R"sql(
    CREATE TABLE docs (id INTEGER PRIMARY KEY, topic TEXT);
    CREATE TABLE doc_word (docid INTEGER, word TEXT, freq INTEGER);
    INSERT INTO docs VALUES
      (1, 'pets'), (2, 'pets'), (3, 'space'), (4, 'space'), (5, 'pets'),
      (6, 'space');
    INSERT INTO doc_word VALUES
      (1, 'cat', 3), (1, 'purr', 1),
      (2, 'dog', 2), (2, 'leash', 1), (2, 'cat', 1),
      (3, 'rocket', 2), (3, 'orbit', 1),
      (4, 'orbit', 3), (4, 'launch', 1),
      (5, 'dog', 1), (5, 'purr', 2),
      (6, 'rocket', 1), (6, 'launch', 2);
  )sql"));

  // 2. The preprocessing queries (paper §3.1): features, targets.
  bornsql::born::SqlSource source;
  source.x_parts = {
      "SELECT docid AS n, 'word:' || word AS j, freq AS w FROM doc_word"};
  source.y = "SELECT id AS n, topic AS k, 1.0 AS w FROM docs";

  bornsql::born::BornSqlClassifier clf(&db, "quickstart", source);

  // 3. Train on the first four documents, then learn the rest
  //    incrementally (exact incremental learning, Def. 2.1).
  BORNSQL_RETURN_IF_ERROR(clf.Fit("SELECT id AS n FROM docs WHERE id <= 4"));
  BORNSQL_RETURN_IF_ERROR(
      clf.PartialFit("SELECT id AS n FROM docs WHERE id > 4"));

  // 4. Deploy (materialize + index the weights) and classify everything.
  BORNSQL_RETURN_IF_ERROR(clf.Deploy());
  BORNSQL_ASSIGN_OR_RETURN(auto predictions,
                           clf.Predict("SELECT id AS n FROM docs"));
  std::printf("predictions:\n");
  for (const auto& p : predictions) {
    std::printf("  doc %-2s -> %s\n", p.n.ToString().c_str(),
                p.k.ToString().c_str());
  }

  // 5. Probabilities for a single document.
  BORNSQL_ASSIGN_OR_RETURN(auto probas, clf.PredictProba("SELECT 1 AS n"));
  std::printf("P(topic | doc 1):\n");
  for (const auto& p : probas) {
    std::printf("  %-6s %.3f\n", p.k.ToString().c_str(), p.p);
  }

  // 6. Explanations: which words define each topic (global), and why doc 3
  //    was classified the way it was (local).
  BORNSQL_ASSIGN_OR_RETURN(auto global, clf.ExplainGlobal(4));
  std::printf("global explanation (top weights):\n");
  for (const auto& e : global) {
    std::printf("  %-12s %-6s %.4f\n", e.j.c_str(), e.k.ToString().c_str(),
                e.w);
  }
  BORNSQL_ASSIGN_OR_RETURN(auto local, clf.ExplainLocal("SELECT 3 AS n", 3));
  std::printf("local explanation for doc 3:\n");
  for (const auto& e : local) {
    std::printf("  %-12s %-6s %.4f\n", e.j.c_str(), e.k.ToString().c_str(),
                e.w);
  }

  // 7. Unlearn document 1 (exact unlearning, Def. 2.2) and re-deploy.
  BORNSQL_RETURN_IF_ERROR(clf.Unlearn("SELECT 1 AS n"));
  BORNSQL_RETURN_IF_ERROR(clf.Deploy());
  BORNSQL_ASSIGN_OR_RETURN(auto after,
                           clf.Predict("SELECT id AS n FROM docs"));
  std::printf("after unlearning doc 1, %zu documents still classify\n",
              after.size());
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
